"""Exactness and behaviour tests for TGM range / kNN search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BruteForceSearch
from repro.core import TokenGroupMatrix, knn_search, range_search
from repro.core.sets import SetRecord
from repro.partitioning import MinTokenPartitioner, RandomPartitioner
from repro.workloads import perturbed_queries, sample_queries


@pytest.fixture(scope="module")
def indexed(zipf_small):
    partition = MinTokenPartitioner().partition(zipf_small, 12)
    return zipf_small, TokenGroupMatrix(zipf_small, partition.groups)


class TestRangeExactness:
    @pytest.mark.parametrize("threshold", [0.0, 0.3, 0.5, 0.8, 1.0])
    def test_matches_brute_force(self, indexed, threshold):
        dataset, tgm = indexed
        brute = BruteForceSearch(dataset)
        for query in sample_queries(dataset, 15, seed=1):
            expected = brute.range_search(query, threshold)
            actual = range_search(dataset, tgm, query, threshold)
            assert actual.matches == expected.matches

    def test_out_of_database_queries(self, indexed):
        dataset, tgm = indexed
        brute = BruteForceSearch(dataset)
        for query in perturbed_queries(dataset, 10, seed=2):
            assert (
                range_search(dataset, tgm, query, 0.4).matches
                == brute.range_search(query, 0.4).matches
            )

    def test_threshold_one_returns_only_duplicates(self, indexed):
        dataset, tgm = indexed
        query = dataset.records[0]
        result = range_search(dataset, tgm, query, 1.0)
        assert all(similarity == 1.0 for _, similarity in result.matches)
        assert 0 in result.indices()

    def test_invalid_threshold_rejected(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(ValueError):
            range_search(dataset, tgm, dataset.records[0], 1.5)


class TestKnnExactness:
    @pytest.mark.parametrize("k", [1, 5, 17])
    def test_similarities_match_brute_force(self, indexed, k):
        dataset, tgm = indexed
        brute = BruteForceSearch(dataset)
        for query in sample_queries(dataset, 15, seed=3):
            expected = sorted((s for _, s in brute.knn_search(query, k).matches), reverse=True)
            actual = sorted((s for _, s in knn_search(dataset, tgm, query, k).matches), reverse=True)
            assert actual == pytest.approx(expected)

    def test_k_exceeding_database_returns_everything(self, indexed):
        dataset, tgm = indexed
        result = knn_search(dataset, tgm, dataset.records[0], len(dataset) + 10)
        assert len(result) == len(dataset)

    def test_result_sorted_by_similarity(self, indexed):
        dataset, tgm = indexed
        result = knn_search(dataset, tgm, dataset.records[0], 10)
        similarities = [s for _, s in result.matches]
        assert similarities == sorted(similarities, reverse=True)

    def test_invalid_k_rejected(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(ValueError):
            knn_search(dataset, tgm, dataset.records[0], 0)


class TestPruning:
    def test_some_groups_pruned_on_selective_query(self, indexed):
        dataset, tgm = indexed
        result = range_search(dataset, tgm, dataset.records[0], 0.9)
        assert result.stats.groups_pruned > 0
        assert result.stats.candidates_verified < len(dataset)

    def test_stats_columns_visited(self, indexed):
        dataset, tgm = indexed
        query = dataset.records[0]
        result = range_search(dataset, tgm, query, 0.5)
        assert result.stats.columns_visited == len(query.distinct) * tgm.num_groups

    def test_better_partitioning_prunes_more(self, zipf_small):
        """A structure-aware partition should verify fewer candidates than random."""
        random_tgm = TokenGroupMatrix(
            zipf_small, RandomPartitioner(seed=0).partition(zipf_small, 12).groups
        )
        mintoken_tgm = TokenGroupMatrix(
            zipf_small, MinTokenPartitioner().partition(zipf_small, 12).groups
        )
        queries = sample_queries(zipf_small, 30, seed=4)
        random_total = sum(
            range_search(zipf_small, random_tgm, q, 0.7).stats.candidates_verified
            for q in queries
        )
        mintoken_total = sum(
            range_search(zipf_small, mintoken_tgm, q, 0.7).stats.candidates_verified
            for q in queries
        )
        assert mintoken_total < random_total


class TestUnseenQueryTokens:
    def test_phantom_tokens_count_toward_query_size(self, indexed):
        dataset, tgm = indexed
        universe = len(dataset.universe)
        base = list(dataset.records[0].distinct)
        query = SetRecord(base + [universe + 100])
        result = range_search(dataset, tgm, query, 0.1)
        brute = BruteForceSearch(dataset)
        assert result.matches == brute.range_search(query, 0.1).matches


@settings(max_examples=25, deadline=None)
@given(
    query_tokens=st.sets(st.integers(min_value=0, max_value=249), min_size=1, max_size=12),
    threshold=st.sampled_from([0.2, 0.5, 0.9]),
)
def test_property_range_equals_brute_force(zipf_small, query_tokens, threshold):
    partition = MinTokenPartitioner().partition(zipf_small, 10)
    tgm = TokenGroupMatrix(zipf_small, partition.groups)
    query = SetRecord(query_tokens)
    expected = BruteForceSearch(zipf_small).range_search(query, threshold)
    actual = range_search(zipf_small, tgm, query, threshold)
    assert actual.matches == expected.matches
