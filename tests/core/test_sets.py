"""Unit and property tests for SetRecord and overlap computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sets import SetRecord, distinct_overlap, overlap

token_lists = st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=20)


class TestConstruction:
    def test_tokens_sorted(self):
        assert SetRecord([3, 1, 2]).tokens == (1, 2, 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SetRecord([])

    def test_multiset_flag(self):
        assert SetRecord([1, 1, 2]).is_multiset
        assert not SetRecord([1, 2]).is_multiset

    def test_counts(self):
        counts = SetRecord([1, 1, 2]).counts()
        assert counts[1] == 2 and counts[2] == 1

    def test_len_counts_duplicates(self):
        assert len(SetRecord([1, 1, 2])) == 3

    def test_distinct(self):
        assert SetRecord([1, 1, 2]).distinct == frozenset({1, 2})

    def test_contains_and_iter(self):
        record = SetRecord([5, 3])
        assert 5 in record and 4 not in record
        assert list(record) == [3, 5]

    def test_equality_and_hash(self):
        assert SetRecord([1, 2]) == SetRecord([2, 1])
        assert SetRecord([1, 1]) != SetRecord([1])
        assert hash(SetRecord([1, 2])) == hash(SetRecord([2, 1]))

    def test_min_token(self):
        assert SetRecord([9, 4, 7]).min_token() == 4

    def test_repr_truncates(self):
        assert "..." in repr(SetRecord(range(20)))


class TestOverlap:
    def test_plain_sets(self):
        assert overlap(SetRecord([1, 2, 3]), SetRecord([2, 3, 4])) == 2

    def test_disjoint(self):
        assert overlap(SetRecord([1]), SetRecord([2])) == 0

    def test_multiset_min_counts(self):
        assert overlap(SetRecord([1, 1, 1, 2]), SetRecord([1, 1, 3])) == 2

    def test_multiset_vs_plain(self):
        assert overlap(SetRecord([1, 1]), SetRecord([1])) == 1

    @given(token_lists, token_lists)
    def test_matches_counter_semantics(self, a, b):
        record_a, record_b = SetRecord(a), SetRecord(b)
        expected = sum(min(a.count(t), b.count(t)) for t in set(a) | set(b))
        assert overlap(record_a, record_b) == expected

    @given(token_lists, token_lists)
    def test_symmetry(self, a, b):
        assert overlap(SetRecord(a), SetRecord(b)) == overlap(SetRecord(b), SetRecord(a))

    @given(token_lists)
    def test_self_overlap_is_size(self, a):
        record = SetRecord(a)
        assert overlap(record, record) == len(record)

    @given(token_lists, token_lists)
    def test_distinct_overlap_matches_set_intersection(self, a, b):
        assert distinct_overlap(SetRecord(a), SetRecord(b)) == len(set(a) & set(b))
