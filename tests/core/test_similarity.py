"""Tests for similarity measures, including the TGM Applicability Property."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sets import SetRecord
from repro.core.similarity import (
    MEASURES,
    CosineSimilarity,
    DiceSimilarity,
    JaccardSimilarity,
    OverlapCoefficient,
    Similarity,
    get_measure,
)

token_sets = st.sets(st.integers(min_value=0, max_value=40), min_size=1, max_size=15)


class TestJaccard:
    def test_identical(self):
        measure = JaccardSimilarity()
        assert measure(SetRecord([1, 2]), SetRecord([1, 2])) == 1.0

    def test_disjoint(self):
        assert JaccardSimilarity()(SetRecord([1]), SetRecord([2])) == 0.0

    def test_known_value(self):
        # |{1,2} ∩ {2,3}| / |{1,2} ∪ {2,3}| = 1/3
        assert JaccardSimilarity()(SetRecord([1, 2]), SetRecord([2, 3])) == pytest.approx(1 / 3)

    def test_group_bound_is_fraction_covered(self):
        assert JaccardSimilarity().group_upper_bound(2, 3) == pytest.approx(2 / 3)

    def test_multiset_jaccard(self):
        # overlap({1,1,2},{1,2,2}) = 1+1 = 2 (min counts); union = 3+3-2 = 4.
        value = JaccardSimilarity()(SetRecord([1, 1, 2]), SetRecord([1, 2, 2]))
        assert value == pytest.approx(0.5)


class TestCosine:
    def test_paper_example(self):
        # Section 3.2: Q = {t1,t2,t3}, R = {t1,t2} → bound 2/sqrt(3·2) ≈ 0.82.
        assert CosineSimilarity().group_upper_bound(2, 3) == pytest.approx(2 / math.sqrt(6))

    def test_self_similarity_is_one(self):
        assert CosineSimilarity()(SetRecord([1, 2, 3]), SetRecord([1, 2, 3])) == pytest.approx(1.0)


class TestDice:
    def test_known_value(self):
        assert DiceSimilarity()(SetRecord([1, 2]), SetRecord([2, 3])) == pytest.approx(0.5)

    def test_group_bound(self):
        assert DiceSimilarity().group_upper_bound(2, 3) == pytest.approx(4 / 5)


class TestOverlapCoefficient:
    def test_subset_gives_one(self):
        assert OverlapCoefficient()(SetRecord([1, 2]), SetRecord([1, 2, 3])) == 1.0

    def test_trivial_group_bound(self):
        assert OverlapCoefficient().group_upper_bound(1, 10) == 1.0
        assert OverlapCoefficient().group_upper_bound(0, 10) == 0.0


class TestRegistry:
    def test_get_by_name(self):
        assert get_measure("jaccard").name == "jaccard"

    def test_passthrough(self):
        measure = JaccardSimilarity()
        assert get_measure(measure) is measure

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown similarity measure"):
            get_measure("nope")


@pytest.mark.parametrize("name", sorted(MEASURES))
class TestCommonProperties:
    @given(a=token_sets, b=token_sets)
    def test_range_and_symmetry(self, name, a, b):
        measure = MEASURES[name]
        value = measure(SetRecord(a), SetRecord(b))
        assert 0.0 <= value <= 1.0
        if name != "containment":  # containment is deliberately asymmetric
            assert value == pytest.approx(measure(SetRecord(b), SetRecord(a)))

    @given(q=token_sets, s=token_sets)
    def test_applicability_condition_1(self, name, q, s):
        """Theorem 3.1(1): Sim(Q, Q∩S) >= Sim(Q, S)."""
        shared = q & s
        if not shared:
            return
        measure = MEASURES[name]
        assert measure(SetRecord(q), SetRecord(shared)) >= measure(
            SetRecord(q), SetRecord(s)
        ) - 1e-12

    @given(q=token_sets)
    def test_applicability_condition_2(self, name, q):
        """Theorem 3.1(2): Sim(Q, R) is monotone in R ⊆ Q."""
        measure = MEASURES[name]
        ordered = sorted(q)
        previous = 0.0
        for size in range(1, len(ordered) + 1):
            value = measure(SetRecord(q), SetRecord(ordered[:size]))
            assert value >= previous - 1e-12
            previous = value

    @given(q=token_sets, s=token_sets)
    def test_group_bound_dominates_true_similarity(self, name, q, s):
        """The bound from covered-token count upper-bounds the similarity."""
        measure = MEASURES[name]
        covered = len(q & s)
        bound = measure.group_upper_bound(covered, len(q))
        assert bound >= measure(SetRecord(q), SetRecord(s)) - 1e-12


@pytest.mark.parametrize("name", sorted(MEASURES))
class TestBoundsFromCounts:
    """Group scoring is hot: every registered measure must override the base
    per-element loop with an array formula that matches the scalar bound."""

    def test_registered_measure_overrides_the_base_loop(self, name):
        assert type(MEASURES[name]).bounds_from_counts is not Similarity.bounds_from_counts

    @pytest.mark.parametrize("query_size", [0, 1, 5, 17])
    def test_override_matches_scalar_group_upper_bound(self, name, query_size):
        measure = MEASURES[name]
        counts = np.arange(0, query_size + 2, dtype=np.int64)
        bounds = measure.bounds_from_counts(counts, query_size)
        expected = [measure.group_upper_bound(int(c), query_size) for c in counts]
        assert bounds.tolist() == pytest.approx(expected)
