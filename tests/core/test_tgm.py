"""Tests for the token-group matrix, both backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tgm import TokenGroupMatrix
from repro.partitioning import MinTokenPartitioner


def build_tiny_tgm(tiny_dataset, backend="dense"):
    # Figure 1's situation: two groups over T = {A, B, C, D}.
    groups = [[0, 1, 4], [2, 3, 5]]
    return TokenGroupMatrix(tiny_dataset, groups, backend=backend)


class TestConstruction:
    @pytest.mark.parametrize("backend", ["dense", "roaring"])
    def test_bits_match_membership(self, tiny_dataset, backend):
        tgm = build_tiny_tgm(tiny_dataset, backend)
        a, b, c, d = (tiny_dataset.universe.id_of(t) for t in "ABCD")
        # Group 0 = {AB, AC, ABC} covers A, B, C but not D.
        assert tgm.contains(0, a) and tgm.contains(0, b) and tgm.contains(0, c)
        assert not tgm.contains(0, d)
        # Group 1 = {BCD, D, CD} covers B, C, D but not A.
        assert not tgm.contains(1, a)
        assert tgm.contains(1, d)

    def test_unknown_backend_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="backend"):
            TokenGroupMatrix(tiny_dataset, [[0]], backend="wat")

    def test_group_vocabulary_size(self, tiny_dataset):
        tgm = build_tiny_tgm(tiny_dataset)
        assert tgm.group_vocabulary_size(0) == 3
        assert tgm.group_vocabulary_size(1) == 3

    def test_out_of_range_token_contains_false(self, tiny_dataset):
        tgm = build_tiny_tgm(tiny_dataset)
        assert not tgm.contains(0, 999)


class TestBounds:
    def test_figure1_example(self, tiny_dataset):
        """Query {A}: bound 1 for the group containing A, 0 for the other."""
        tgm = build_tiny_tgm(tiny_dataset)
        a = tiny_dataset.universe.id_of("A")
        bounds = tgm.upper_bounds([a], 1)
        assert bounds[0] == pytest.approx(1.0)
        assert bounds[1] == pytest.approx(0.0)

    def test_unseen_token_dilutes_bound(self, tiny_dataset):
        tgm = build_tiny_tgm(tiny_dataset)
        a = tiny_dataset.universe.id_of("A")
        # Query {A, unseen}: |Q| = 2 but only A can be covered.
        bounds = tgm.upper_bounds([a], 2)
        assert bounds[0] == pytest.approx(0.5)

    def test_empty_known_tokens(self, tiny_dataset):
        tgm = build_tiny_tgm(tiny_dataset)
        assert (tgm.upper_bounds([], 3) == 0.0).all()

    def test_multiset_query_bound_uses_multiplicity(self):
        """Regression: Q = {a,a} against a group holding {a,a} must bound 1.

        A group's vocabulary only records *presence*, so the best-case
        overlap for a covered token is the query's full multiplicity; the
        unweighted bound (1/2 here) would wrongly prune the exact match.
        """
        dataset = Dataset.from_token_lists([["a", "a"], ["b"]])
        tgm = TokenGroupMatrix(dataset, [[0], [1]])
        a = dataset.universe.id_of("a")
        bounds = tgm.upper_bounds([a], query_size=2, weights=[2])
        assert bounds[0] == pytest.approx(1.0)
        unweighted = tgm.upper_bounds([a], query_size=2)
        assert unweighted[0] == pytest.approx(0.5)

    @pytest.mark.parametrize("backend", ["dense", "roaring"])
    def test_weighted_counts_backends_agree(self, zipf_small, backend):
        partition = MinTokenPartitioner().partition(zipf_small, 8)
        dense = TokenGroupMatrix(zipf_small, partition.groups, backend="dense")
        other = TokenGroupMatrix(zipf_small, partition.groups, backend=backend)
        tokens = [0, 3, 7]
        weights = [2, 1, 3]
        np.testing.assert_array_equal(
            dense.covered_counts(tokens, weights), other.covered_counts(tokens, weights)
        )

    @pytest.mark.parametrize("backend", ["dense", "roaring"])
    def test_backends_agree(self, zipf_small, backend):
        partition = MinTokenPartitioner().partition(zipf_small, 8)
        dense = TokenGroupMatrix(zipf_small, partition.groups, backend="dense")
        other = TokenGroupMatrix(zipf_small, partition.groups, backend=backend)
        query = list(zipf_small.records[3].distinct)
        np.testing.assert_allclose(
            dense.upper_bounds(query, len(query)), other.upper_bounds(query, len(query))
        )

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=249), min_size=1, max_size=10))
    def test_bound_dominates_every_member(self, query_tokens):
        """Core invariant: UB(Q, G) >= Sim(Q, S) for all S ∈ G."""
        from repro.datasets import zipf_dataset

        dataset = zipf_dataset(120, 250, (2, 8), seed=5)
        partition = MinTokenPartitioner().partition(dataset, 6)
        tgm = TokenGroupMatrix(dataset, partition.groups)
        query = SetRecord(query_tokens)
        bounds = tgm.upper_bounds(list(query.distinct), len(query))
        for group_id, members in enumerate(tgm.group_members):
            for record_index in members:
                similarity = tgm.measure(query, dataset.records[record_index])
                assert bounds[group_id] >= similarity - 1e-12


class TestUpdates:
    def test_extend_universe_grows_columns(self, tiny_dataset):
        tgm = build_tiny_tgm(tiny_dataset)
        tgm.extend_universe(10)
        assert tgm.universe_size == 10
        assert not tgm.contains(0, 9)

    def test_extend_universe_cannot_shrink(self, tiny_dataset):
        tgm = build_tiny_tgm(tiny_dataset)
        with pytest.raises(ValueError):
            tgm.extend_universe(1)

    @pytest.mark.parametrize("backend", ["dense", "roaring"])
    def test_register_flips_bits_and_grows(self, backend):
        dataset = Dataset.from_token_lists([["a", "b"], ["c"]])
        tgm = TokenGroupMatrix(dataset, [[0], [1]], backend=backend)
        new_record = SetRecord([0, 4])  # token 4 is new
        dataset.universe.intern_all(["x", "y", "z"])
        dataset.append(new_record)
        tgm.register(0, 2, new_record)
        assert tgm.universe_size >= 5
        assert tgm.contains(0, 4)
        assert 2 in tgm.group_members[0]


class TestSize:
    def test_dense_size_is_bits(self, tiny_dataset):
        tgm = build_tiny_tgm(tiny_dataset)
        assert tgm.byte_size() == (2 * 4 + 7) // 8

    def test_roaring_smaller_on_sparse_data(self):
        from repro.datasets import zipf_dataset

        dataset = zipf_dataset(200, 60_000, (2, 6), seed=3)
        partition = MinTokenPartitioner().partition(dataset, 4)
        dense = TokenGroupMatrix(dataset, partition.groups, backend="dense")
        roaring = TokenGroupMatrix(dataset, partition.groups, backend="roaring")
        roaring.run_optimize()
        assert roaring.byte_size() < dense.byte_size()

    def test_repr_mentions_backend(self, tiny_dataset):
        assert "dense" in repr(build_tiny_tgm(tiny_dataset))
