"""Unit tests for the token universe."""

import pytest

from repro.core.tokens import TokenUniverse


class TestIntern:
    def test_first_seen_order(self):
        universe = TokenUniverse()
        assert universe.intern("b") == 0
        assert universe.intern("a") == 1
        assert universe.intern("b") == 0

    def test_constructor_interns(self):
        universe = TokenUniverse(["x", "y", "x"])
        assert len(universe) == 2
        assert universe.id_of("x") == 0
        assert universe.id_of("y") == 1

    def test_intern_all_returns_ids_in_order(self):
        universe = TokenUniverse()
        assert universe.intern_all(["c", "a", "c"]) == [0, 1, 0]

    def test_mixed_hashable_types(self):
        universe = TokenUniverse()
        assert universe.intern(5) == 0
        assert universe.intern("5") == 1
        assert universe.intern((1, 2)) == 2


class TestLookup:
    def test_id_of_unknown_raises(self):
        with pytest.raises(KeyError):
            TokenUniverse().id_of("missing")

    def test_get_id_returns_none_for_unknown(self):
        assert TokenUniverse().get_id("missing") is None

    def test_token_of_roundtrip(self):
        universe = TokenUniverse(["p", "q"])
        assert universe.token_of(universe.id_of("q")) == "q"

    def test_contains(self):
        universe = TokenUniverse(["a"])
        assert "a" in universe
        assert "b" not in universe

    def test_iteration_yields_tokens_in_id_order(self):
        universe = TokenUniverse(["z", "y", "x"])
        assert list(universe) == ["z", "y", "x"]


class TestIdsOfKnown:
    def test_drops_unknown(self):
        universe = TokenUniverse(["a", "b"])
        assert universe.ids_of_known(["a", "nope", "b"]) == [0, 1]

    def test_does_not_intern(self):
        universe = TokenUniverse(["a"])
        universe.ids_of_known(["new"])
        assert "new" not in universe


class TestCopy:
    def test_copy_is_independent(self):
        original = TokenUniverse(["a"])
        clone = original.copy()
        clone.intern("b")
        assert len(original) == 1
        assert len(clone) == 2
