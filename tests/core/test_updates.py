"""Tests for Section 6 update handling (closed and open universe)."""

import pytest

from repro.baselines import BruteForceSearch
from repro.core import TokenGroupMatrix, insert_set, knn_search, range_search
from repro.core.updates import choose_group
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries


@pytest.fixture()
def indexed(zipf_small):
    # Function-scoped: tests mutate the dataset, so work on a copy.
    from repro.core import Dataset

    dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
    partition = MinTokenPartitioner().partition(dataset, 10)
    return dataset, TokenGroupMatrix(dataset, partition.groups)


class TestChooseGroup:
    def test_highest_bound_wins(self, tiny_dataset):
        tgm = TokenGroupMatrix(tiny_dataset, [[0, 1, 4], [2, 3, 5]])
        a = tiny_dataset.universe.id_of("A")
        assert choose_group(tgm, [a], 1) == 0

    def test_empty_known_tokens_pick_smallest_group(self, tiny_dataset):
        tgm = TokenGroupMatrix(tiny_dataset, [[0, 1, 4, 5], [2, 3]])
        assert choose_group(tgm, [], 3) == 1

    def test_tie_broken_by_group_size(self, tiny_dataset):
        tgm = TokenGroupMatrix(tiny_dataset, [[0, 1, 2, 4], [3, 5]])
        c = tiny_dataset.universe.id_of("C")
        # Both groups contain C; group 1 is smaller.
        assert choose_group(tgm, [c], 1) == 1


class TestClosedUniverseInsert:
    def test_insert_known_tokens(self, indexed):
        dataset, tgm = indexed
        tokens = [dataset.universe.token_of(t) for t in dataset.records[0].distinct]
        index, group = insert_set(dataset, tgm, tokens)
        assert dataset.records[index].distinct == dataset.records[0].distinct
        assert index in tgm.group_members[group]

    def test_inserted_set_findable(self, indexed):
        dataset, tgm = indexed
        tokens = [dataset.universe.token_of(t) for t in dataset.records[5].distinct]
        index, _ = insert_set(dataset, tgm, tokens)
        result = range_search(dataset, tgm, dataset.records[index], 1.0)
        assert index in result.indices()

    def test_strict_mode_rejects_new_tokens(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(KeyError):
            insert_set(dataset, tgm, ["absolutely-new-token"], intern=False)

    def test_empty_set_rejected(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(ValueError):
            insert_set(dataset, tgm, [])


class TestOpenUniverseInsert:
    def test_new_tokens_extend_universe_and_tgm(self, indexed):
        dataset, tgm = indexed
        before = len(dataset.universe)
        index, group = insert_set(dataset, tgm, ["brand-new-1", "brand-new-2"])
        assert len(dataset.universe) == before + 2
        assert tgm.universe_size == before + 2
        new_id = dataset.universe.id_of("brand-new-1")
        assert tgm.contains(group, new_id)
        assert index in tgm.group_members[group]

    def test_mixed_new_and_old_tokens(self, indexed):
        dataset, tgm = indexed
        old_token = dataset.universe.token_of(0)
        index, group = insert_set(dataset, tgm, [old_token, "unseen-x"])
        assert tgm.contains(group, 0)
        assert tgm.contains(group, dataset.universe.id_of("unseen-x"))

    def test_search_remains_exact_after_inserts(self, indexed):
        dataset, tgm = indexed
        for i in range(20):
            tokens = [dataset.universe.token_of(t) for t in dataset.records[i].distinct]
            insert_set(dataset, tgm, tokens + [f"new-{i}"])
        brute = BruteForceSearch(dataset)
        for query in sample_queries(dataset, 10, seed=5):
            assert (
                range_search(dataset, tgm, query, 0.5).matches
                == brute.range_search(query, 0.5).matches
            )
            expected = sorted(s for _, s in brute.knn_search(query, 5).matches)
            actual = sorted(s for _, s in knn_search(dataset, tgm, query, 5).matches)
            assert actual == pytest.approx(expected)
