"""Tests for TGM integrity validation."""

import pytest

from repro.core import Dataset, TokenGroupMatrix, validate_tgm
from repro.partitioning import MinTokenPartitioner


@pytest.fixture()
def healthy(zipf_small):
    partition = MinTokenPartitioner().partition(zipf_small, 8)
    return zipf_small, TokenGroupMatrix(zipf_small, partition.groups)


class TestHealthyIndex:
    def test_fresh_index_validates(self, healthy):
        dataset, tgm = healthy
        report = validate_tgm(dataset, tgm)
        assert report.ok
        assert report.summary() == "index OK"

    def test_after_inserts_still_valid(self, zipf_small):
        from repro.core import insert_set

        dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
        partition = MinTokenPartitioner().partition(dataset, 6)
        tgm = TokenGroupMatrix(dataset, partition.groups)
        for i in range(10):
            insert_set(dataset, tgm, [f"v-{i}", "shared"])
        assert validate_tgm(dataset, tgm).ok


class TestCorruptIndex:
    def test_missing_bit_detected(self, healthy):
        dataset, tgm = healthy
        # Flip off a bit that a member needs.
        record_index = tgm.group_members[0][0]
        token = next(iter(dataset.records[record_index].distinct))
        tgm._matrix[0, token] = False
        report = validate_tgm(dataset, tgm)
        assert not report.ok
        assert (0, token) in report.missing_bits
        assert "missing token bits" in report.summary()

    def test_orphan_record_detected(self, zipf_small):
        groups = MinTokenPartitioner().partition(zipf_small, 4).groups
        groups[0] = groups[0][1:]  # drop one record from its group
        tgm = TokenGroupMatrix(zipf_small, groups)
        report = validate_tgm(zipf_small, tgm)
        assert not report.ok
        assert len(report.orphan_records) == 1

    def test_duplicate_membership_detected(self, zipf_small):
        groups = MinTokenPartitioner().partition(zipf_small, 4).groups
        groups[1] = groups[1] + [groups[0][0]]
        tgm = TokenGroupMatrix(zipf_small, groups)
        report = validate_tgm(zipf_small, tgm)
        assert not report.ok
        assert groups[0][0] in report.duplicate_records

    def test_out_of_range_member_detected(self):
        dataset = Dataset.from_token_lists([["a"], ["b"]])
        tgm = TokenGroupMatrix(dataset, [[0], [1]])
        tgm.group_members[0].append(99)
        report = validate_tgm(dataset, tgm)
        assert not report.ok
        assert (0, 99) in report.out_of_range_members

    def test_extra_bits_not_flagged(self, healthy):
        dataset, tgm = healthy
        # Setting a spurious bit weakens pruning but keeps answers exact.
        tgm._matrix[0, :] = True
        assert validate_tgm(dataset, tgm).ok
