"""scalar vs columnar verification must be bit-identical on every path.

``verify="columnar"`` is purely a throughput knob: knn, range, batch, and
sharded scatter-gather queries must return the same records with the same
similarity floats in the same order as ``verify="scalar"``, and the cost
counters (``candidates_verified``, ``similarity_computations``) must agree
exactly.  Randomized datasets, sets and multisets, all measures.
"""

from __future__ import annotations

import random

import pytest

from repro.core.batch import batch_knn_search, batch_range_search
from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.sets import SetRecord
from repro.datasets import zipf_dataset
from repro.distributed import ShardedLES3
from repro.partitioning import MinTokenPartitioner
from repro.workloads import perturbed_queries, sample_queries


def multiset_dataset(seed: int, num_sets: int = 90, num_tokens: int = 60) -> Dataset:
    rng = random.Random(seed)
    return Dataset.from_token_lists(
        [
            [rng.randrange(num_tokens) for _ in range(rng.randint(1, 10))]
            for _ in range(num_sets)
        ]
    )


def assert_same_result(a, b):
    assert a.matches == b.matches  # identical floats, identical order
    assert a.stats.candidates_verified == b.stats.candidates_verified
    assert a.stats.similarity_computations == b.stats.similarity_computations
    assert a.stats.groups_pruned == b.stats.groups_pruned


class TestSingleEngine:
    @pytest.mark.parametrize("measure", sorted(["jaccard", "dice", "cosine", "overlap", "containment"]))
    @pytest.mark.parametrize("make", [lambda: zipf_dataset(150, 250, (2, 8), seed=5),
                                      lambda: multiset_dataset(6)])
    def test_knn_and_range(self, measure, make):
        dataset = make()
        engine = LES3.build(
            dataset, num_groups=8, partitioner=MinTokenPartitioner(), measure=measure
        )
        queries = sample_queries(dataset, 8, seed=1) + perturbed_queries(dataset, 8, seed=2)
        for query in queries:
            for k in (1, 4, 12):
                assert_same_result(
                    engine.knn_record(query, k, verify="scalar"),
                    engine.knn_record(query, k, verify="columnar"),
                )
            for threshold in (0.0, 0.35, 0.7, 1.0):
                assert_same_result(
                    engine.range_record(query, threshold, verify="scalar"),
                    engine.range_record(query, threshold, verify="columnar"),
                )

    def test_engine_default_mode_is_columnar_and_overridable(self):
        dataset = zipf_dataset(80, 120, (2, 6), seed=9)
        engine = LES3.build(dataset, num_groups=4, partitioner=MinTokenPartitioner())
        assert engine.verify == "columnar"
        scalar_engine = LES3(dataset, engine.tgm, verify="scalar")
        query = dataset.records[0]
        assert_same_result(engine.knn_record(query, 5), scalar_engine.knn_record(query, 5))

    def test_roaring_backend(self):
        dataset = zipf_dataset(100, 150, (2, 7), seed=12)
        engine = LES3.build(
            dataset, num_groups=6, partitioner=MinTokenPartitioner(), backend="roaring"
        )
        for query in sample_queries(dataset, 6, seed=3):
            assert_same_result(
                engine.knn_record(query, 5, verify="scalar"),
                engine.knn_record(query, 5, verify="columnar"),
            )
            assert_same_result(
                engine.range_record(query, 0.5, verify="scalar"),
                engine.range_record(query, 0.5, verify="columnar"),
            )


class TestBatch:
    def test_batch_range_and_knn(self):
        dataset = zipf_dataset(130, 220, (2, 8), seed=17)
        engine = LES3.build(dataset, num_groups=6, partitioner=MinTokenPartitioner())
        queries = sample_queries(dataset, 10, seed=4) + perturbed_queries(dataset, 6, seed=5)
        for threshold in (0.0, 0.5, 0.9):
            scalar = batch_range_search(dataset, engine.tgm, queries, threshold, verify="scalar")
            columnar = batch_range_search(dataset, engine.tgm, queries, threshold, verify="columnar")
            for a, b in zip(scalar, columnar):
                assert_same_result(a, b)
        scalar = batch_knn_search(dataset, engine.tgm, queries, 7, verify="scalar")
        columnar = batch_knn_search(dataset, engine.tgm, queries, 7, verify="columnar")
        for a, b in zip(scalar, columnar):
            assert_same_result(a, b)


class TestSharded:
    @pytest.mark.parametrize("shards", [1, 3, 5])
    def test_gather_paths(self, shards):
        dataset = zipf_dataset(160, 260, (2, 8), seed=23)
        sharded = ShardedLES3.build(
            dataset, shards, num_groups=8,
            partitioner_factory=lambda shard_id: MinTokenPartitioner(),
        )
        assert sharded.verify == "columnar"
        queries = sample_queries(dataset, 8, seed=6) + perturbed_queries(dataset, 6, seed=7)
        for query in queries:
            assert_same_result(
                sharded.knn_record(query, 6, verify="scalar"),
                sharded.knn_record(query, 6, verify="columnar"),
            )
            assert_same_result(
                sharded.range_record(query, 0.4, verify="scalar"),
                sharded.range_record(query, 0.4, verify="columnar"),
            )
        for a, b in zip(
            sharded.batch_knn_record(queries, 5, verify="scalar"),
            sharded.batch_knn_record(queries, 5, verify="columnar"),
        ):
            assert_same_result(a, b)
        for a, b in zip(
            sharded.batch_range_record(queries, 0.6, verify="scalar"),
            sharded.batch_range_record(queries, 0.6, verify="columnar"),
        ):
            assert_same_result(a, b)

    def test_from_engine_inherits_verify_mode(self):
        dataset = zipf_dataset(60, 100, (2, 6), seed=29)
        engine = LES3.build(
            dataset, num_groups=4, partitioner=MinTokenPartitioner(), verify="scalar"
        )
        assert ShardedLES3.from_engine(engine, 2).verify == "scalar"

    def test_multiset_sharded(self):
        dataset = multiset_dataset(31)
        sharded = ShardedLES3.build(
            dataset, 3, num_groups=5,
            partitioner_factory=lambda shard_id: MinTokenPartitioner(),
        )
        for query in dataset.records[:8]:
            assert_same_result(
                sharded.knn_record(query, 4, verify="scalar"),
                sharded.knn_record(query, 4, verify="columnar"),
            )


class TestUpdates:
    def test_equivalence_survives_inserts_and_removes(self):
        dataset = zipf_dataset(110, 180, (2, 7), seed=37)
        engine = LES3.build(dataset, num_groups=6, partitioner=MinTokenPartitioner())
        engine.knn_record(dataset.records[0], 3)  # build the columnar view early
        for tokens in (["500", "501"], ["1", "2", "never-seen"], ["3", "3", "4"]):
            engine.insert(tokens)
        engine.remove(5)
        engine.remove(40)
        queries = sample_queries(dataset, 8, seed=8) + [
            dataset.records[-1],  # a freshly inserted record as the query
            SetRecord([0, 1, len(dataset.universe) + 3]),  # phantom token
        ]
        for query in queries:
            assert_same_result(
                engine.knn_record(query, 5, verify="scalar"),
                engine.knn_record(query, 5, verify="columnar"),
            )
            assert_same_result(
                engine.range_record(query, 0.3, verify="scalar"),
                engine.range_record(query, 0.3, verify="columnar"),
            )
