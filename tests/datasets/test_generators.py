"""Tests for the dataset generators (synthetic and Table 2 stand-ins)."""

import pytest

from repro.core import get_measure
from repro.datasets import (
    TABLE2_SPECS,
    dataset_names,
    make_dataset,
    powerlaw_similarity_dataset,
    uniform_dataset,
    zipf_dataset,
)


class TestUniform:
    def test_shape(self):
        dataset = uniform_dataset(50, 100, (3, 7), seed=0)
        stats = dataset.stats()
        assert stats.num_sets == 50
        assert 3 <= stats.min_set_size and stats.max_set_size <= 7
        assert stats.universe_size == 100

    def test_fixed_size(self):
        dataset = uniform_dataset(20, 50, 5, seed=1)
        assert all(len(r) == 5 for r in dataset.records)

    def test_deterministic(self):
        a = uniform_dataset(20, 50, (2, 6), seed=5)
        b = uniform_dataset(20, 50, (2, 6), seed=5)
        assert [r.tokens for r in a.records] == [r.tokens for r in b.records]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_dataset(0, 10, 2)
        with pytest.raises(ValueError):
            uniform_dataset(5, 10, (4, 20))


class TestZipf:
    def test_low_ids_more_frequent(self):
        dataset = zipf_dataset(400, 200, (3, 8), exponent=1.2, seed=2)
        frequency = [0] * 200
        for record in dataset.records:
            for token in record.distinct:
                frequency[token] += 1
        head = sum(frequency[:20])
        tail = sum(frequency[-20:])
        assert head > 3 * tail

    def test_no_duplicate_tokens_within_set(self):
        dataset = zipf_dataset(50, 100, (2, 6), seed=3)
        assert all(not r.is_multiset for r in dataset.records)


class TestPowerlawSimilarity:
    @pytest.mark.parametrize("alpha", [1.0, 2.0, 4.0])
    def test_fixed_set_size(self, alpha):
        dataset = powerlaw_similarity_dataset(100, 300, 9, alpha=alpha, seed=4)
        assert all(len(r) == 9 for r in dataset.records)

    def test_alpha_controls_similarity_mass(self):
        """Larger α ⇒ fewer similar pairs (the Section 7.7 regime knob)."""
        measure = get_measure("jaccard")

        def similar_pair_fraction(alpha):
            dataset = powerlaw_similarity_dataset(
                150, 400, 10, alpha=alpha, num_templates=5, seed=6
            )
            pairs = 0
            similar = 0
            records = dataset.records
            for i in range(len(records)):
                for j in range(i + 1, min(i + 30, len(records))):
                    pairs += 1
                    if measure(records[i], records[j]) > 0.3:
                        similar += 1
            return similar / pairs

        assert similar_pair_fraction(4.0) < similar_pair_fraction(1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            powerlaw_similarity_dataset(10, 50, 5, alpha=0.5)


class TestTable2StandIns:
    def test_names(self):
        assert dataset_names() == ["KOSARAK", "LIVEJ", "DBLP", "AOL", "FS", "PMC"]

    @pytest.mark.parametrize("name", ["KOSARAK", "AOL"])
    def test_size_statistics_match_spec_shape(self, name):
        spec = TABLE2_SPECS[name]
        dataset = make_dataset(name, scale=0.0005, seed=0)
        stats = dataset.stats()
        assert stats.min_set_size >= spec.min_size
        # Mean within a factor of ~1.6 of the target (geometric tail + caps).
        assert stats.avg_set_size == pytest.approx(spec.avg_size, rel=0.6)

    def test_scale_controls_size(self):
        small = make_dataset("DBLP", scale=0.0001, seed=1)
        large = make_dataset("DBLP", scale=0.0005, seed=1)
        assert len(large) > len(small)

    def test_case_insensitive_name(self):
        assert len(make_dataset("kosarak", scale=0.0003)) > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("NOPE")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_dataset("KOSARAK", scale=0.0)
