"""Sharded out-of-core loads: ``load_sharded(..., mode="mmap"|"lazy")``.

Contract: both mmap-backed modes answer knn/range/join/batch
bit-identically to the in-memory load — for every shard count and every
``parallel`` execution mode — while ``lazy`` additionally builds shard
TGMs only on first visit, keeps at most ``max_resident_shards`` of them
resident (LRU), and refuses in-memory mutation.
"""

from __future__ import annotations

import json

import pytest

from repro.core import PersistenceError
from repro.datasets import zipf_dataset
from repro.distributed import LazyShardTGMs, ShardedLES3, load_sharded, save_sharded
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

SHARD_COUNTS = (1, 4, 8)


@pytest.fixture(scope="module")
def dataset():
    return zipf_dataset(220, 260, (2, 9), seed=13)


def build_sharded(dataset, shards):
    return ShardedLES3.build(
        dataset, shards, num_groups=12,
        partitioner_factory=lambda shard_id: MinTokenPartitioner(),
        strategy="range",
    )


@pytest.fixture(scope="module")
def saved(dataset, tmp_path_factory):
    """One saved directory per shard count, plus the engines that wrote them."""
    root = tmp_path_factory.mktemp("sharded-saves")
    saves = {}
    for shards in SHARD_COUNTS:
        engine = build_sharded(dataset, shards)
        save_sharded(engine, root / f"S{shards}")
        saves[shards] = (engine, root / f"S{shards}")
    return saves


def str_queries(engine, count, seed=2):
    return [
        [str(engine.dataset.universe.token_of(t)) for t in query.tokens]
        for query in sample_queries(engine.dataset, count, seed=seed)
    ]


class TestModeEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", ["mmap", "lazy"])
    def test_serial_answers_match_memory_load(self, saved, shards, mode):
        _, directory = saved[shards]
        memory = load_sharded(directory)
        loaded = load_sharded(directory, mode=mode)
        queries = str_queries(memory, 8)
        for tokens in queries:
            assert memory.knn(tokens, k=5).matches == loaded.knn(tokens, k=5).matches
            assert (
                memory.range(tokens, 0.4).matches == loaded.range(tokens, 0.4).matches
            )
        assert memory.join(0.5).pairs == loaded.join(0.5).pairs

    @pytest.mark.parametrize("parallel", ["serial", "thread", "process"])
    @pytest.mark.parametrize("mode", ["mmap", "lazy"])
    def test_parallel_modes_bit_identical(self, saved, mode, parallel):
        memory, directory = load_sharded(saved[4][1]), saved[4][1]
        with load_sharded(directory, mode=mode) as loaded:
            from repro.core.engine import as_query_record

            queries = [
                as_query_record(loaded.dataset, tokens)
                for tokens in str_queries(memory, 6)
            ]
            reference_knn = [
                r.matches for r in memory.batch_knn_record(
                    [as_query_record(memory.dataset, t) for t in str_queries(memory, 6)], 5
                )
            ]
            assert [
                r.matches
                for r in loaded.batch_knn_record(queries, 5, parallel=parallel)
            ] == reference_knn
            reference_range = [
                r.matches for r in memory.batch_range_record(
                    [as_query_record(memory.dataset, t) for t in str_queries(memory, 6)], 0.4
                )
            ]
            assert [
                r.matches
                for r in loaded.batch_range_record(queries, 0.4, parallel=parallel)
            ] == reference_range
            assert loaded.join(0.5, parallel=parallel).pairs == memory.join(0.5).pairs

    def test_tombstones_survive_all_modes(self, dataset, tmp_path):
        engine = build_sharded(dataset, 4)
        engine.remove(3)
        engine.remove(11)
        save_sharded(engine, tmp_path / "idx")
        for mode in ("memory", "mmap", "lazy"):
            loaded = load_sharded(tmp_path / "idx", mode=mode)
            assert loaded.removed == engine.removed, mode
            native = engine.tokens_of(3)
            assert 3 not in loaded.knn([str(t) for t in native], k=5).indices()


class TestLaziness:
    def test_tgms_build_on_demand_with_lru_eviction(self, saved):
        _, directory = saved[8]
        loaded = load_sharded(directory, mode="lazy", max_resident_shards=2)
        assert loaded.is_lazy
        tgms = loaded.tgms
        assert isinstance(tgms, LazyShardTGMs)
        assert len(tgms.resident()) == 0  # nothing built by the load itself
        loaded.knn([str(loaded.dataset.universe.token_of(0))], k=3)
        assert 0 < len(tgms.resident()) <= 2  # visits build, the LRU bounds
        loaded.join(0.5)  # touches every live shard ...
        assert len(tgms.resident()) <= 2  # ... but residency stays bounded

    def test_answers_identical_even_with_capacity_one(self, saved):
        memory, (_, directory) = load_sharded(saved[8][1]), saved[8]
        loaded = load_sharded(directory, mode="lazy", max_resident_shards=1)
        for tokens in str_queries(memory, 5):
            assert memory.knn(tokens, k=4).matches == loaded.knn(tokens, k=4).matches
        assert memory.join(0.5).pairs == loaded.join(0.5).pairs

    def test_thread_parallel_under_heavy_eviction(self, saved):
        """lazy × thread with capacity 1: concurrent pool tasks hammer the
        shared LRU (build/evict/build) and must stay exact and crash-free."""
        from repro.core.engine import as_query_record

        memory, directory = load_sharded(saved[8][1]), saved[8][1]
        with load_sharded(directory, mode="lazy", max_resident_shards=1) as loaded:
            queries = [
                as_query_record(loaded.dataset, tokens)
                for tokens in str_queries(memory, 10)
            ]
            reference = [
                r.matches for r in memory.batch_knn_record(
                    [as_query_record(memory.dataset, t) for t in str_queries(memory, 10)], 4
                )
            ]
            for _ in range(3):  # repeat: interleavings vary run to run
                assert [
                    r.matches
                    for r in loaded.batch_knn_record(queries, 4, parallel="thread")
                ] == reference

    def test_lazy_engine_is_read_only(self, saved):
        loaded = load_sharded(saved[4][1], mode="lazy")
        with pytest.raises(ValueError, match="read-only|lazily loaded"):
            loaded.insert(["anything"])
        with pytest.raises(ValueError, match="read-only|lazily loaded"):
            loaded.remove(0)

    def test_summary_without_forcing_builds(self, saved):
        """Group counts and sizes come from the manifests, not TGM builds."""
        memory, directory = load_sharded(saved[8][1]), saved[8][1]
        loaded = load_sharded(directory, mode="lazy")
        assert loaded.num_groups == memory.num_groups
        assert loaded.shard_sizes() == memory.shard_sizes()
        assert len(loaded.tgms.resident()) == 0

    def test_mmap_mode_still_mutable(self, dataset, tmp_path):
        engine = build_sharded(dataset, 2)
        save_sharded(engine, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx", mode="mmap")
        index, shard_id, _ = loaded.insert(["zz-new", "zz-also-new"])
        assert loaded.knn(["zz-new", "zz-also-new"], k=1).matches == [(index, 1.0)]
        # The insert went to the delta log, so the save stays armed and a
        # reload (any mode) serves the new record too.
        assert loaded.source_dir == str(tmp_path / "idx")
        reloaded = load_sharded(tmp_path / "idx", mode="mmap")
        assert reloaded.knn(["zz-new", "zz-also-new"], k=1).matches == [(index, 1.0)]


class TestShardedRefusals:
    def test_pre_v3_save_refuses_mmap_modes(self, saved):
        _, directory = saved[1]
        import shutil

        legacy = directory.parent / "legacy"
        shutil.copytree(directory, legacy)
        (legacy / "dataset.bin").unlink()
        top = json.loads((legacy / "manifest.json").read_text())
        top.pop("dataset_bin_digest", None)
        (legacy / "manifest.json").write_text(json.dumps(top, indent=2) + "\n")
        memory = load_sharded(legacy)
        assert memory.num_shards == 1  # memory mode unaffected
        with memory:
            # ... and its process workers fall back to text rehydration.
            tokens = [str(memory.dataset.universe.token_of(0))]
            assert (
                memory.knn(tokens, k=3, parallel="process").matches
                == memory.knn(tokens, k=3).matches
            )
        for mode in ("mmap", "lazy"):
            with pytest.raises(PersistenceError, match="saved before format v3"):
                load_sharded(legacy, mode=mode)

    def test_header_manifest_shard_count_mismatch(self, dataset, tmp_path):
        """A dataset.bin from a different save must not pair with this manifest."""
        engine = build_sharded(dataset, 2)
        save_sharded(engine, tmp_path / "idx")
        other = ShardedLES3.build(
            zipf_dataset(60, 80, (2, 6), seed=5), 2, num_groups=4,
            partitioner_factory=lambda shard_id: MinTokenPartitioner(),
        )
        save_sharded(other, tmp_path / "other")
        (tmp_path / "idx" / "dataset.bin").write_bytes(
            (tmp_path / "other" / "dataset.bin").read_bytes()
        )
        with pytest.raises(PersistenceError, match="different saves"):
            load_sharded(tmp_path / "idx", mode="mmap")
        # The process-pool workers rehydrate through the same cross-check:
        # an in-memory load still works (it reads dataset.txt), but its
        # process-mode queries must refuse the mixed bin rather than
        # answer from different records than the parent.
        memory = load_sharded(tmp_path / "idx")
        with memory:
            tokens = [str(memory.dataset.universe.token_of(0))]
            with pytest.raises(PersistenceError, match="different saves"):
                memory.knn(tokens, k=3, parallel="process")

    def test_unknown_mode(self, saved):
        with pytest.raises(ValueError, match="unknown load mode"):
            load_sharded(saved[1][1], mode="laser")
