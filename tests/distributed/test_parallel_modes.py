"""Execution modes: serial, thread, and process must be bit-identical.

``parallel=`` is a throughput knob like sharding itself — for every
query kind (single, batch, join), every mode must return the same
records with the same similarities in the same order.  The process mode
additionally exercises the worker-rehydration path: queries travel as
picklable payloads and the workers answer from shards reloaded off disk.
"""

from __future__ import annotations

import pytest

from repro.datasets import zipf_dataset
from repro.distributed import ShardedLES3, load_sharded, save_sharded
from repro.partitioning import MinTokenPartitioner
from repro.workloads import perturbed_queries, sample_queries


def minitoken_factory(shard_id: int) -> MinTokenPartitioner:
    return MinTokenPartitioner()


@pytest.fixture(scope="module")
def dataset():
    return zipf_dataset(160, 240, (2, 8), seed=29)


@pytest.fixture(scope="module")
def engine(dataset):
    return ShardedLES3.build(
        dataset, 4, num_groups=10,
        partitioner_factory=minitoken_factory, strategy="range",
    )


@pytest.fixture(scope="module")
def queries(dataset):
    return sample_queries(dataset, 10, seed=1) + perturbed_queries(dataset, 6, seed=2)


@pytest.fixture(scope="module")
def saved_engine(engine, tmp_path_factory):
    """The engine, armed for process mode by a save (module-scoped pool)."""
    save_sharded(engine, tmp_path_factory.mktemp("parallel") / "idx")
    yield engine
    engine.close()


class TestThreadMode:
    def test_knn_identical(self, engine, queries):
        for query in queries:
            for k in (1, 3, 10):
                assert (
                    engine.knn_record(query, k, parallel="thread").matches
                    == engine.knn_record(query, k).matches
                )

    def test_range_identical(self, engine, queries):
        for query in queries:
            for threshold in (0.0, 0.3, 0.7, 1.0):
                assert (
                    engine.range_record(query, threshold, parallel="thread").matches
                    == engine.range_record(query, threshold).matches
                )

    def test_batch_identical(self, engine, queries):
        serial_knn = [r.matches for r in engine.batch_knn_record(queries, 5)]
        serial_range = [r.matches for r in engine.batch_range_record(queries, 0.4)]
        assert [
            r.matches for r in engine.batch_knn_record(queries, 5, parallel="thread")
        ] == serial_knn
        assert [
            r.matches
            for r in engine.batch_range_record(queries, 0.4, parallel="thread")
        ] == serial_range

    def test_join_identical(self, engine):
        for threshold in (0.3, 0.6, 0.9):
            assert (
                engine.join(threshold, parallel="thread").pairs
                == engine.join(threshold).pairs
            )

    def test_k_exceeding_database(self, engine, dataset, queries):
        k = len(dataset.records) + 10
        for query in queries[:3]:
            assert (
                engine.knn_record(query, k, parallel="thread").matches
                == engine.knn_record(query, k).matches
            )

    def test_scalar_verify_composes(self, engine, queries):
        for query in queries[:4]:
            assert (
                engine.knn_record(query, 5, verify="scalar", parallel="thread").matches
                == engine.knn_record(query, 5).matches
            )


class TestProcessMode:
    def test_knn_identical(self, saved_engine, queries):
        for query in queries[:8]:
            for k in (1, 5):
                assert (
                    saved_engine.knn_record(query, k, parallel="process").matches
                    == saved_engine.knn_record(query, k).matches
                )

    def test_batch_identical(self, saved_engine, queries):
        assert [
            r.matches
            for r in saved_engine.batch_knn_record(queries, 5, parallel="process")
        ] == [r.matches for r in saved_engine.batch_knn_record(queries, 5)]
        assert [
            r.matches
            for r in saved_engine.batch_range_record(queries, 0.4, parallel="process")
        ] == [r.matches for r in saved_engine.batch_range_record(queries, 0.4)]

    def test_join_identical(self, saved_engine):
        assert (
            saved_engine.join(0.5, parallel="process").pairs
            == saved_engine.join(0.5).pairs
        )

    def test_unknown_token_queries(self, saved_engine):
        """Phantom tokens survive the payload round trip (count to |Q|)."""
        for tokens in (["nope"], ["nope", "nada"], [0, "ghost", "ghost"]):
            assert (
                saved_engine.knn(tokens, 5, parallel="process").matches
                == saved_engine.knn(tokens, 5).matches
            )
            assert (
                saved_engine.range(tokens, 0.1, parallel="process").matches
                == saved_engine.range(tokens, 0.1).matches
            )

    def test_loaded_engine_is_armed(self, saved_engine, queries):
        with load_sharded(saved_engine.source_dir, parallel="process") as loaded:
            local = sample_queries(loaded.dataset, 6, seed=7)
            assert [
                r.matches for r in loaded.batch_knn_record(local, 5)
            ] == [r.matches for r in loaded.batch_knn_record(local, 5, parallel=None)]
            # parallel=None resolves to the engine default ("process").
            assert loaded.parallel == "process"
            assert [
                r.matches
                for r in loaded.batch_knn_record(local, 5, parallel="serial")
            ] == [r.matches for r in loaded.batch_knn_record(local, 5)]


class TestModeResolution:
    def test_unknown_mode_rejected(self, engine, queries):
        with pytest.raises(ValueError, match="parallel mode"):
            engine.knn_record(queries[0], 3, parallel="gpu")
        with pytest.raises(ValueError, match="parallel mode"):
            ShardedLES3(engine.dataset, engine.tgms, engine.measure, parallel="gpu")

    def test_process_without_save_rejected(self, dataset, queries):
        fresh = ShardedLES3.build(
            dataset, 2, num_groups=6, partitioner_factory=minitoken_factory
        )
        with pytest.raises(ValueError, match="save_sharded"):
            fresh.knn_record(queries[0], 3, parallel="process")

    def test_unsaved_mutation_disarms_process_mode(self, dataset, queries, tmp_path):
        fresh = ShardedLES3.build(
            dataset, 2, num_groups=6, partitioner_factory=minitoken_factory
        )
        fresh.insert(["brand", "new"])
        with pytest.raises(ValueError, match="save_sharded"):
            fresh.knn_record(queries[0], 3, parallel="process")
        # Saving arms it, with the new record visible to the workers.
        save_sharded(fresh, tmp_path / "idx")
        with fresh:
            assert (
                fresh.knn(["brand", "new"], 1, parallel="process").matches
                == fresh.knn(["brand", "new"], 1).matches
            )

    def test_saved_mutation_keeps_process_mode_armed(self, dataset, tmp_path):
        """Post-save mutations reach workers through the delta log."""
        fresh = ShardedLES3.build(
            dataset, 2, num_groups=6, partitioner_factory=minitoken_factory
        )
        save_sharded(fresh, tmp_path / "idx")
        index, _, _ = fresh.insert(["delta-brand", "delta-new"])
        with fresh:
            assert fresh.knn(
                ["delta-brand", "delta-new"], 1, parallel="process"
            ).matches == [(index, 1.0)]
            fresh.remove(index)
            assert fresh.knn(
                ["delta-brand", "delta-new"], 1, parallel="process"
            ).matches != [(index, 1.0)]

    def test_default_mode_attribute(self, dataset):
        engine = ShardedLES3.build(
            dataset, 2, num_groups=6,
            partitioner_factory=minitoken_factory, parallel="thread",
        )
        local = sample_queries(dataset, 4, seed=3)
        # parallel=None on the call resolves to the engine's default.
        assert [
            r.matches for r in engine.batch_knn_record(local, 3)
        ] == [r.matches for r in engine.batch_knn_record(local, 3, parallel="serial")]
        engine.close()

    def test_close_is_idempotent(self, dataset):
        engine = ShardedLES3.build(
            dataset, 2, num_groups=6, partitioner_factory=minitoken_factory
        )
        engine.close()
        engine.close()
