"""ShardedLES3 must be bit-identical to LES3 — the exactness contract.

Sharding is a throughput knob, never a correctness one: for every shard
count, placement strategy, backend, and measure, every query must return
the same records with the same similarities in the same order as the
single-node engine.  The suite also covers the update path (open-universe
inserts, logical deletes) and the batch scatter-gather.
"""

from __future__ import annotations

import pytest

from repro.core import Dataset
from repro.core.engine import LES3
from repro.datasets import uniform_dataset, zipf_dataset
from repro.distributed import ShardedLES3
from repro.learn import L2PPartitioner
from repro.partitioning import MinTokenPartitioner
from repro.workloads import perturbed_queries, sample_queries

SHARD_COUNTS = (1, 2, 5)


def minitoken_factory(shard_id: int) -> MinTokenPartitioner:
    return MinTokenPartitioner()


def build_pair(dataset, num_groups=8, backend="dense", measure="jaccard", shards=2,
               strategy="hash"):
    single = LES3.build(
        dataset, num_groups=num_groups, partitioner=MinTokenPartitioner(),
        measure=measure, backend=backend,
    )
    sharded = ShardedLES3.build(
        dataset, shards, num_groups=num_groups,
        partitioner_factory=minitoken_factory, measure=measure, backend=backend,
        strategy=strategy,
    )
    return single, sharded


def assert_equivalent(single, sharded, queries, ks=(1, 3, 10), thresholds=(0.0, 0.3, 0.7, 1.0)):
    for query in queries:
        for k in ks:
            assert single.knn_record(query, k).matches == sharded.knn_record(query, k).matches
        for threshold in thresholds:
            assert (
                single.range_record(query, threshold).matches
                == sharded.range_record(query, threshold).matches
            )


class TestQueryEquivalence:
    @pytest.fixture(scope="class")
    def zipf(self):
        return zipf_dataset(180, 300, (2, 8), seed=3)

    @pytest.fixture(scope="class")
    def queries(self, zipf):
        return sample_queries(zipf, 12, seed=1) + perturbed_queries(zipf, 12, seed=2)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_knn_and_range_identical(self, zipf, queries, shards):
        single, sharded = build_pair(zipf, shards=shards)
        assert_equivalent(single, sharded, queries)

    @pytest.mark.parametrize("strategy", ["hash", "size", "range"])
    def test_every_placement_strategy(self, zipf, queries, strategy):
        single, sharded = build_pair(zipf, shards=5, strategy=strategy)
        assert_equivalent(single, sharded, queries[:8])

    @pytest.mark.parametrize("measure", ["cosine", "dice", "containment"])
    def test_other_measures(self, zipf, queries, measure):
        single, sharded = build_pair(zipf, shards=2, measure=measure)
        assert_equivalent(single, sharded, queries[:6], ks=(2, 5), thresholds=(0.4, 0.8))

    def test_uniform_data(self):
        dataset = uniform_dataset(140, 90, (2, 5), seed=9)
        single, sharded = build_pair(dataset, shards=5)
        assert_equivalent(single, sharded, sample_queries(dataset, 10, seed=3))

    def test_k_exceeding_database(self, zipf, queries):
        single, sharded = build_pair(zipf, shards=5)
        for query in queries[:4]:
            a = single.knn_record(query, len(zipf.records) + 10)
            b = sharded.knn_record(query, len(zipf.records) + 10)
            assert a.matches == b.matches
            assert len(a) == len(zipf.records)

    def test_unknown_token_queries(self, zipf):
        single, sharded = build_pair(zipf, shards=2)
        for tokens in (["nope"], ["nope", "nada"], [0, "ghost", "ghost"]):
            assert single.knn(tokens, 5).matches == sharded.knn(tokens, 5).matches
            assert single.range(tokens, 0.1).matches == sharded.range(tokens, 0.1).matches

    def test_cross_partitioner_equivalence(self, zipf, queries):
        """Exactness holds even when the two engines partition differently."""
        single = LES3.build(
            zipf, num_groups=8,
            partitioner=L2PPartitioner(pairs_per_model=200, epochs=1, initial_groups=4,
                                       min_group_size=5, seed=0),
        )
        sharded = ShardedLES3.build(
            zipf, 5, num_groups=8, partitioner_factory=minitoken_factory,
        )
        assert_equivalent(single, sharded, queries[:8], ks=(3,), thresholds=(0.5,))


class TestRoaringBackend:
    @pytest.fixture(scope="class")
    def pair(self):
        dataset = zipf_dataset(150, 260, (2, 7), seed=21)
        return build_pair(dataset, backend="roaring", shards=5) + (dataset,)

    def test_equivalence(self, pair):
        single, sharded, dataset = pair
        assert_equivalent(single, sharded, sample_queries(dataset, 10, seed=5))

    def test_batch_equivalence(self, pair):
        single, sharded, dataset = pair
        queries = sample_queries(dataset, 10, seed=6)
        for i, result in enumerate(sharded.batch_knn_record(queries, 4)):
            assert result.matches == single.knn_record(queries[i], 4).matches
        for i, result in enumerate(sharded.batch_range_record(queries, 0.5)):
            assert result.matches == single.range_record(queries[i], 0.5).matches


class TestBatchEquivalence:
    @pytest.fixture(scope="class")
    def stack(self):
        dataset = zipf_dataset(160, 280, (2, 8), seed=13)
        single, sharded = build_pair(dataset, shards=5)
        queries = sample_queries(dataset, 15, seed=7) + perturbed_queries(dataset, 10, seed=8)
        return single, sharded, queries

    def test_batch_knn(self, stack):
        single, sharded, queries = stack
        results = sharded.batch_knn_record(queries, 6)
        assert len(results) == len(queries)
        for i, result in enumerate(results):
            assert result.matches == single.knn_record(queries[i], 6).matches

    @pytest.mark.parametrize("threshold", [0.0, 0.4, 0.9])
    def test_batch_range(self, stack, threshold):
        single, sharded, queries = stack
        results = sharded.batch_range_record(queries, threshold)
        for i, result in enumerate(results):
            assert result.matches == single.range_record(queries[i], threshold).matches

    def test_empty_batch(self, stack):
        _, sharded, _ = stack
        assert sharded.batch_knn_record([], 3) == []
        assert sharded.batch_range_record([], 0.5) == []


class TestUpdateEquivalence:
    @pytest.fixture()
    def engines(self):
        # Function scope: each test mutates its own pair of engines.
        dataset_a = zipf_dataset(120, 200, (2, 6), seed=31)
        dataset_b = zipf_dataset(120, 200, (2, 6), seed=31)
        single = LES3.build(dataset_a, num_groups=6, partitioner=MinTokenPartitioner())
        sharded = ShardedLES3.build(
            dataset_b, 3, num_groups=6, partitioner_factory=minitoken_factory
        )
        return single, sharded

    def test_inserts_align_record_indices(self, engines):
        single, sharded = engines
        for tokens in (["7", "9"], ["unseen", "tokens", "here"], ["1", "2", "3"]):
            index_a, _ = single.insert(tokens)
            index_b, shard_id, group_id = sharded.insert(tokens)
            assert index_a == index_b
            assert 0 <= shard_id < sharded.num_shards
        queries = sample_queries(single.dataset, 8, seed=9)
        assert_equivalent(single, sharded, queries, ks=(3, 8), thresholds=(0.3, 0.8))
        # The inserted sets are findable in both engines.
        assert single.knn(["unseen", "tokens", "here"], 1).matches == \
            sharded.knn(["unseen", "tokens", "here"], 1).matches

    def test_insert_routes_to_lightest_shard(self, engines):
        _, sharded = engines
        sizes_before = sharded.shard_sizes()
        lightest = min(range(sharded.num_shards), key=lambda s: (sizes_before[s], s))
        _, shard_id, _ = sharded.insert(["balance", "me"])
        assert shard_id == lightest
        sizes_after = sharded.shard_sizes()
        assert sizes_after[shard_id] == sizes_before[shard_id] + 1

    def test_removes_stay_equivalent(self, engines):
        single, sharded = engines
        for record_index in (0, 7, 55, 119):
            single.remove(record_index)
            sharded.remove(record_index)
        queries = sample_queries(single.dataset, 8, seed=10)
        assert_equivalent(single, sharded, queries, ks=(3, 12), thresholds=(0.0, 0.5))
        removed = single.dataset.records[7]
        assert 7 not in single.knn_record(removed, 5).indices()
        assert 7 not in sharded.knn_record(removed, 5).indices()

    def test_double_remove_raises(self, engines):
        _, sharded = engines
        sharded.remove(3)
        with pytest.raises(KeyError):
            sharded.remove(3)

    def test_interleaved_insert_remove(self, engines):
        single, sharded = engines
        single.remove(10), sharded.remove(10)
        index_a, _ = single.insert(["x1", "x2"])
        index_b, _, _ = sharded.insert(["x1", "x2"])
        assert index_a == index_b
        single.remove(index_a), sharded.remove(index_b)
        queries = sample_queries(single.dataset, 6, seed=11)
        assert_equivalent(single, sharded, queries, ks=(4,), thresholds=(0.4,))


class TestJoinEquivalence:
    """The scatter-gather self-join must be bit-identical to the single engine."""

    @pytest.fixture(scope="class")
    def zipf(self):
        return zipf_dataset(150, 240, (2, 8), seed=43)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_shard_counts(self, zipf, shards):
        single, sharded = build_pair(zipf, shards=shards)
        for threshold in (0.4, 0.7, 1.0):
            expected = single.join(threshold).pairs
            assert sharded.join(threshold).pairs == expected
            assert sharded.join(threshold, verify="scalar").pairs == expected

    @pytest.mark.parametrize("strategy", ["hash", "size", "range"])
    def test_placement_strategies(self, zipf, strategy):
        single, sharded = build_pair(zipf, shards=4, strategy=strategy)
        assert sharded.join(0.5).pairs == single.join(0.5).pairs

    @pytest.mark.parametrize("measure", ["cosine", "dice", "containment"])
    def test_other_measures(self, zipf, measure):
        single, sharded = build_pair(zipf, shards=3, measure=measure)
        assert sharded.join(0.6).pairs == single.join(0.6).pairs

    def test_from_engine_resharding(self, zipf):
        single = LES3.build(zipf, num_groups=8, partitioner=MinTokenPartitioner())
        for shards in (2, 6):
            resharded = ShardedLES3.from_engine(single, shards)
            assert resharded.join(0.5).pairs == single.join(0.5).pairs

    def test_join_after_updates(self):
        dataset_a = zipf_dataset(110, 180, (2, 6), seed=47)
        dataset_b = zipf_dataset(110, 180, (2, 6), seed=47)
        single = LES3.build(dataset_a, num_groups=6, partitioner=MinTokenPartitioner())
        sharded = ShardedLES3.build(
            dataset_b, 3, num_groups=6, partitioner_factory=minitoken_factory
        )
        for tokens in (["5", "6", "7"], ["fresh", "tokens"], ["2", "2", "3"]):
            single.insert(tokens)
            sharded.insert(tokens)
        for record_index in (0, 17, 93):
            single.remove(record_index)
            sharded.remove(record_index)
        for threshold in (0.3, 0.8):
            assert sharded.join(threshold).pairs == single.join(threshold).pairs


class TestMultisetEquivalence:
    def test_multiset_records_and_queries(self):
        token_lists = [
            ["a", "a", "b"],
            ["a", "b", "b", "c"],
            ["c", "d"],
            ["a", "c", "c"],
            ["d", "d", "e"],
            ["b", "c", "d", "d"],
        ] * 8
        dataset_a = Dataset.from_token_lists(token_lists)
        dataset_b = Dataset.from_token_lists(token_lists)
        single = LES3.build(dataset_a, num_groups=4, partitioner=MinTokenPartitioner())
        sharded = ShardedLES3.build(
            dataset_b, 3, num_groups=4, partitioner_factory=minitoken_factory
        )
        for query in dataset_a.records[:6]:
            assert single.knn_record(query, 5).matches == sharded.knn_record(query, 5).matches
            assert (
                single.range_record(query, 0.5).matches
                == sharded.range_record(query, 0.5).matches
            )
