"""Sharded persistence: save/load round trips and corruption detection.

The lifecycle contract: ``save_sharded`` → ``load_sharded`` reproduces a
``ShardedLES3`` that answers knn/range/join bit-identically to the engine
that was saved — at any shard count, deletes included — and any corrupt
or partial save raises :class:`PersistenceError` instead of loading a
wrong-answer engine.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.core import LES3, Dataset, PersistenceError, load_engine, save_engine
from repro.datasets import zipf_dataset
from repro.distributed import ShardedLES3, load_sharded, save_sharded
from repro.distributed.persistence import shard_dir_name
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

SHARD_COUNTS = (1, 4, 8)


def minitoken_factory(shard_id: int) -> MinTokenPartitioner:
    return MinTokenPartitioner()


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    return zipf_dataset(220, 260, (2, 9), seed=13)


def build_sharded(dataset, shards, strategy="range") -> ShardedLES3:
    return ShardedLES3.build(
        dataset, shards, num_groups=12,
        partitioner_factory=minitoken_factory, strategy=strategy,
    )


def native_tokens(engine, query):
    """A query record's external tokens, as the engine's universe holds them."""
    return [engine.dataset.universe.token_of(t) for t in query.tokens]


def assert_same_answers(original, loaded, queries, k=5, threshold=0.4):
    """Same knn/range answers through external tokens, same join pairs.

    The loaded engine re-interned ``dataset.txt``, so queries travel as
    external tokens (string forms on the loaded side — that is what the
    text format stores); record indices and similarities must match
    exactly.
    """
    for query in queries:
        tokens = native_tokens(original, query)
        str_tokens = [str(t) for t in tokens]
        assert (
            original.knn(tokens, k).matches == loaded.knn(str_tokens, k).matches
        )
        assert (
            original.range(tokens, threshold).matches
            == loaded.range(str_tokens, threshold).matches
        )
    assert original.join(0.5).pairs == loaded.join(0.5).pairs


class TestRoundTrip:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_bit_identical_at_every_shard_count(self, dataset, tmp_path, shards):
        engine = build_sharded(dataset, shards)
        save_sharded(engine, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        assert loaded.num_shards == engine.num_shards
        assert loaded.shard_sizes() == engine.shard_sizes()
        assert_same_answers(engine, loaded, sample_queries(dataset, 8, seed=2))

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_round_trip_after_removes(self, dataset, tmp_path, shards):
        engine = build_sharded(dataset, shards)
        for record_index in (3, 57, 120, 198):
            engine.remove(record_index)
        save_sharded(engine, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        assert loaded.removed == engine.removed
        assert loaded.shard_sizes() == engine.shard_sizes()
        assert_same_answers(engine, loaded, sample_queries(dataset, 8, seed=3))

    def test_save_remove_save_load(self, dataset, tmp_path):
        """The worked docs example: a save can be refreshed in place."""
        engine = build_sharded(dataset, 4)
        save_sharded(engine, tmp_path / "idx")
        engine.remove(10)
        engine.remove(44)
        save_sharded(engine, tmp_path / "idx")  # same directory, new state
        loaded = load_sharded(tmp_path / "idx")
        assert loaded.removed == engine.removed
        assert_same_answers(engine, loaded, sample_queries(dataset, 6, seed=4))

    def test_metadata_round_trips(self, dataset, tmp_path):
        engine = build_sharded(dataset, 4, strategy="size")
        engine.verify = "scalar"
        save_sharded(engine, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        assert loaded.placement == "size"
        assert loaded.verify == "scalar"
        assert loaded.measure.name == "jaccard"
        assert loaded.source_dir == str(tmp_path / "idx")

    def test_from_engine_tombstones_carry_over(self, dataset, tmp_path):
        single = LES3.build(dataset, num_groups=10, partitioner=MinTokenPartitioner())
        single.remove(7)
        sharded = ShardedLES3.from_engine(single, 3)
        assert sharded.removed == {7: 0}
        save_sharded(sharded, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        assert loaded.removed == {7: 0}
        assert loaded.placement == "lpt"
        assert single.join(0.6).pairs == loaded.join(0.6).pairs

    def test_resave_with_fewer_shards_drops_stale_dirs(self, dataset, tmp_path):
        save_sharded(build_sharded(dataset, 8), tmp_path / "idx")
        assert (tmp_path / "idx" / shard_dir_name(7)).is_dir()
        save_sharded(build_sharded(dataset, 2), tmp_path / "idx")
        assert not (tmp_path / "idx" / shard_dir_name(7)).exists()
        assert load_sharded(tmp_path / "idx").num_shards == 2

    def test_save_arms_process_mode(self, dataset, tmp_path):
        engine = build_sharded(dataset, 3)
        assert engine.source_dir is None
        save_sharded(engine, tmp_path / "idx")
        assert engine.source_dir == str(tmp_path / "idx")
        base_epoch = engine._source_epoch
        engine.remove(0)
        # Mutation no longer invalidates the save: the op lands in the
        # generation's delta.log and the epoch advertises it to workers.
        assert engine.source_dir == str(tmp_path / "idx")
        assert engine._source_epoch == f"{base_epoch}+1"
        assert (tmp_path / "idx" / "delta.log").is_file()

    def test_unsaved_mutation_still_disarms_process_mode(self, dataset, tmp_path):
        """An engine never saved has no delta log: the old contract holds."""
        engine = build_sharded(dataset, 3)
        save_sharded(engine, tmp_path / "idx")
        rebuilt = build_sharded(dataset, 3)
        rebuilt.remove(0)
        assert rebuilt.source_dir is None

    def test_delta_mutations_survive_reload(self, dataset, tmp_path):
        engine = build_sharded(dataset, 3)
        save_sharded(engine, tmp_path / "idx")
        index, shard_id, _ = engine.insert(["delta-only", "tokens"])
        engine.remove(2)
        reloaded = load_sharded(tmp_path / "idx")
        assert reloaded.knn(["delta-only", "tokens"], k=1).matches == [(index, 1.0)]
        assert reloaded.removed == engine.removed
        assert reloaded._delta.num_ops == 2
        assert reloaded._source_epoch.endswith("+2")


class TestCorruptionDetection:
    @pytest.fixture()
    def saved(self, dataset, tmp_path):
        engine = build_sharded(dataset, 4)
        engine.remove(11)
        save_sharded(engine, tmp_path / "idx")
        return tmp_path / "idx"

    def test_truncated_shard_manifest(self, saved):
        manifest = saved / shard_dir_name(1) / "manifest.json"
        manifest.write_text(manifest.read_text()[: len(manifest.read_text()) // 2])
        with pytest.raises(PersistenceError, match="digest mismatch"):
            load_sharded(saved)

    def test_truncated_shard_manifest_with_matching_digest(self, saved):
        """Even a digest-consistent truncation fails as a clear JSON error."""
        shard_dir = saved / shard_dir_name(1)
        manifest = shard_dir / "manifest.json"
        manifest.write_text(manifest.read_text()[:25])
        top_path = saved / "manifest.json"
        top = json.loads(top_path.read_text())
        from repro.distributed.persistence import _shard_digest

        top["shards"][1]["digest"] = _shard_digest(shard_dir)
        top_path.write_text(json.dumps(top))
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_sharded(saved)

    def test_missing_shard_subdirectory(self, saved):
        shutil.rmtree(saved / shard_dir_name(2))
        with pytest.raises(PersistenceError, match="missing shard subdirectory"):
            load_sharded(saved)

    def test_shard_count_mismatch(self, saved):
        top_path = saved / "manifest.json"
        top = json.loads(top_path.read_text())
        top["num_shards"] = 5
        top_path.write_text(json.dumps(top))
        with pytest.raises(PersistenceError, match="shard count mismatch"):
            load_sharded(saved)

    def test_tampered_groups(self, saved):
        groups_path = saved / shard_dir_name(0) / "groups.json"
        groups = json.loads(groups_path.read_text())
        groups[0] = groups[0][1:]
        groups_path.write_text(json.dumps(groups))
        with pytest.raises(PersistenceError, match="digest mismatch"):
            load_sharded(saved)

    def test_groups_not_covering_despite_matching_digest(self, saved):
        """Coverage is checked globally even when every digest is honest."""
        shard_dir = saved / shard_dir_name(0)
        groups_path = shard_dir / "groups.json"
        groups = json.loads(groups_path.read_text())
        groups[0] = groups[0][1:]
        groups_path.write_text(json.dumps(groups))
        top_path = saved / "manifest.json"
        top = json.loads(top_path.read_text())
        from repro.distributed.persistence import _shard_digest

        top["shards"][0]["digest"] = _shard_digest(shard_dir)
        top_path.write_text(json.dumps(top))
        with pytest.raises(PersistenceError, match="cover"):
            load_sharded(saved)

    def test_tampered_dataset(self, saved):
        """Editing dataset.txt (same record count) must not load silently."""
        data_path = saved / "dataset.txt"
        lines = data_path.read_text().splitlines()
        lines[0] = "totally different tokens"
        data_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistenceError, match="dataset.txt digest"):
            load_sharded(saved)

    def test_shard_verify_mismatch_despite_matching_digest(self, saved):
        """The top-level verify mode rules; a disagreeing shard is corrupt."""
        shard_dir = saved / shard_dir_name(2)
        manifest = json.loads((shard_dir / "manifest.json").read_text())
        manifest["verify"] = "scalar"
        (shard_dir / "manifest.json").write_text(json.dumps(manifest))
        top_path = saved / "manifest.json"
        top = json.loads(top_path.read_text())
        from repro.distributed.persistence import _shard_digest

        top["shards"][2]["digest"] = _shard_digest(shard_dir)
        top_path.write_text(json.dumps(top))
        with pytest.raises(PersistenceError, match="verify"):
            load_sharded(saved)

    def test_unsupported_sharded_format_version(self, saved):
        top_path = saved / "manifest.json"
        top = json.loads(top_path.read_text())
        top["sharded_format_version"] = 99
        top_path.write_text(json.dumps(top))
        with pytest.raises(PersistenceError, match="format version"):
            load_sharded(saved)

    def test_truncated_top_level_manifest(self, saved):
        top_path = saved / "manifest.json"
        top_path.write_text(top_path.read_text()[:40])
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_sharded(saved)

    def test_load_engine_rejects_sharded_dir_with_pointer(self, saved):
        with pytest.raises(PersistenceError, match="load_sharded"):
            load_engine(saved)

    def test_load_sharded_rejects_single_engine_dir(self, dataset, tmp_path):
        single = LES3.build(dataset, num_groups=8, partitioner=MinTokenPartitioner())
        save_engine(single, tmp_path / "single")
        with pytest.raises(PersistenceError, match="load_engine"):
            load_sharded(tmp_path / "single")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sharded(tmp_path / "nope")

    def test_duplicate_tombstone_across_shards(self, saved):
        """A record tombstoned by two shards is corruption, not a delete."""
        # Record 11 was removed from some shard; tombstone it in another too.
        top = json.loads((saved / "manifest.json").read_text())
        owner = next(
            shard_id for shard_id in range(4)
            if 11 in json.loads(
                (saved / shard_dir_name(shard_id) / "manifest.json").read_text()
            )["deleted"]
        )
        other = (owner + 1) % 4
        other_dir = saved / shard_dir_name(other)
        manifest = json.loads((other_dir / "manifest.json").read_text())
        manifest["deleted"] = [11]
        (other_dir / "manifest.json").write_text(json.dumps(manifest))
        from repro.distributed.persistence import _shard_digest

        top["shards"][other]["digest"] = _shard_digest(other_dir)
        (saved / "manifest.json").write_text(json.dumps(top))
        with pytest.raises(PersistenceError, match="more than one shard"):
            load_sharded(saved)
