"""Shard placement strategies and the shard-pruning bound.

The placement tests pin the contract of :func:`assign_shards` (disjoint
cover, balance, determinism).  The property tests establish the soundness
chain the scatter-gather relies on:

    member similarity  <=  group bound  <=  shard bound

so skipping a shard whose bound is strictly below the running kth
similarity (or the range threshold) can never drop a qualifying record.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dataset, TokenGroupMatrix, get_measure
from repro.core.search import prepare_query
from repro.core.sets import SetRecord
from repro.datasets import zipf_dataset
from repro.distributed import SHARD_STRATEGIES, ShardedLES3, assign_shards
from repro.distributed.sharding import record_shard_hash
from repro.partitioning import MinTokenPartitioner


@pytest.fixture(scope="module")
def dataset():
    return zipf_dataset(101, 150, (2, 9), seed=17)


class TestAssignShards:
    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    @pytest.mark.parametrize("num_shards", [1, 2, 5, 8])
    def test_disjoint_exact_cover(self, dataset, strategy, num_shards):
        shards = assign_shards(dataset, num_shards, strategy)
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(len(dataset)))

    @pytest.mark.parametrize("strategy", ["hash", "range"])
    def test_record_counts_balanced(self, dataset, strategy):
        shards = assign_shards(dataset, 4, strategy)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_size_strategy_balances_token_mass(self, dataset):
        shards = assign_shards(dataset, 4, "size")
        loads = [
            sum(len(dataset.records[i]) for i in shard) for shard in shards
        ]
        # LPT guarantee: no shard exceeds the mean by more than one max set.
        max_set = max(len(record) for record in dataset.records)
        assert max(loads) - min(loads) <= max_set

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_deterministic(self, dataset, strategy):
        assert assign_shards(dataset, 5, strategy) == assign_shards(dataset, 5, strategy)

    def test_more_shards_than_records(self):
        tiny = zipf_dataset(3, 20, 2, seed=1)
        shards = assign_shards(tiny, 10, "hash")
        assert sorted(index for shard in shards for index in shard) == [0, 1, 2]
        assert all(shard for shard in shards)

    def test_rejects_bad_inputs(self, dataset):
        with pytest.raises(ValueError):
            assign_shards(dataset, 0, "hash")
        with pytest.raises(ValueError):
            assign_shards(dataset, 2, "alphabetical")

    def test_hash_is_content_stable(self, dataset):
        # Same content, same hash — independent of interning order.
        assert record_shard_hash(SetRecord([3, 1, 2])) == record_shard_hash(SetRecord([2, 3, 1]))
        assert record_shard_hash(SetRecord([1])) != record_shard_hash(SetRecord([2]))


class TestFromEngine:
    def test_groups_preserved_and_balanced(self, dataset):
        from repro.core.engine import LES3

        engine = LES3.build(dataset, num_groups=9, partitioner=MinTokenPartitioner())
        sharded = ShardedLES3.from_engine(engine, 3)
        original = sorted(tuple(sorted(g)) for g in engine.tgm.group_members)
        resharded = sorted(
            tuple(sorted(g)) for tgm in sharded.tgms for g in tgm.group_members
        )
        assert original == resharded
        sizes = sharded.shard_sizes()
        assert max(sizes) - min(sizes) <= max(len(g) for g in engine.tgm.group_members)

    def test_clips_to_group_count(self, dataset):
        from repro.core.engine import LES3

        engine = LES3.build(dataset, num_groups=2, partitioner=MinTokenPartitioner())
        sharded = ShardedLES3.from_engine(engine, 50)
        assert sharded.num_shards == engine.num_groups


token_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8),
    min_size=4,
    max_size=30,
)
query_tokens = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8)
measures = st.sampled_from(["jaccard", "cosine", "dice", "containment", "overlap"])


@settings(max_examples=60, deadline=None)
@given(lists=token_lists, query=query_tokens, num_shards=st.integers(1, 6), measure=measures)
def test_shard_bound_dominates_members(lists, query, num_shards, measure):
    """Soundness chain: sim(Q, S) <= group bound <= shard bound, per shard."""
    dataset = Dataset.from_token_lists(lists)
    sharded = ShardedLES3.build(
        dataset, num_shards, num_groups=max(2, len(lists) // 3),
        partitioner_factory=lambda s: MinTokenPartitioner(), measure=measure,
    )
    record = SetRecord(
        [dataset.universe.get_id(t) if dataset.universe.get_id(t) is not None else 10_000 + t
         for t in query]
    )
    bounds = sharded.shard_bounds(record)
    sim = get_measure(measure)
    for shard_id, tgm in enumerate(sharded.tgms):
        known, weights, query_size = prepare_query(record, tgm.universe_size)
        group_bounds = tgm.upper_bounds(known, query_size, weights)
        for group_id, members in enumerate(tgm.group_members):
            assert group_bounds[group_id] <= bounds[shard_id] + 1e-12
            for record_index in members:
                similarity = sim(record, dataset.records[record_index])
                assert similarity <= group_bounds[group_id] + 1e-12


@settings(max_examples=40, deadline=None)
@given(lists=token_lists, query=query_tokens, num_shards=st.integers(1, 5),
       k=st.integers(1, 8))
def test_sharded_knn_matches_brute_force(lists, query, num_shards, k):
    """End-to-end: shard pruning never changes the exact top-k."""
    dataset = Dataset.from_token_lists(lists)
    sharded = ShardedLES3.build(
        dataset, num_shards, num_groups=max(2, len(lists) // 4),
        partitioner_factory=lambda s: MinTokenPartitioner(),
    )
    record = SetRecord(
        [dataset.universe.get_id(t) if dataset.universe.get_id(t) is not None else 10_000 + t
         for t in query]
    )
    measure = get_measure("jaccard")
    scored = sorted(
        ((i, measure(record, dataset.records[i])) for i in range(len(dataset))),
        key=lambda pair: (-pair[1], pair[0]),
    )
    assert sharded.knn_record(record, k).matches == scored[:k]


class TestVocabularyMaintenance:
    def test_vocab_grows_with_inserts(self, dataset):
        sharded = ShardedLES3.build(
            zipf_dataset(40, 60, (2, 5), seed=2), 2, num_groups=4,
            partitioner_factory=lambda s: MinTokenPartitioner(),
        )
        width_before = sharded._vocab.shape[1]
        sharded.insert(["totally", "fresh", "tokens"])
        assert sharded._vocab.shape[1] > width_before
        result = sharded.knn(["totally", "fresh", "tokens"], 1)
        assert result.matches[0][1] == 1.0

    def test_single_tgm_validation(self, dataset):
        tgm = TokenGroupMatrix(dataset, [[0, 1], [2, 3]])
        with pytest.raises(ValueError):
            ShardedLES3(dataset, [tgm, tgm])  # records in two shards
        with pytest.raises(ValueError):
            ShardedLES3(dataset, [])

    def test_measure_mismatch_rejected(self, dataset):
        jaccard_tgm = TokenGroupMatrix(dataset, [[0, 1]], measure="jaccard")
        with pytest.raises(ValueError, match="unsound"):
            ShardedLES3(dataset, [jaccard_tgm], measure="cosine")
