"""Shard execution supervision: retry, pool resurrection, breaker, degradation.

Process-mode shard tasks run under supervision (``_run_supervised``):
transient worker faults are retried, a SIGKILLed worker triggers one
pool rebuild with only the failed tasks replayed, persistent failures
trip a per-shard circuit breaker that falls back to in-process serial
execution, and ``degraded="partial"`` turns a truly dead shard into
``stats.extra["failed_shards"]`` instead of an exception.  Throughout,
strict mode must stay bit-identical to serial execution or raise —
never silently drop a shard.

Faults are injected via :mod:`repro.testing.faults`; worker processes
inherit the armed plan through fork, and token files make ``kill``/
transient rules fire exactly once across the whole pool.
"""

from __future__ import annotations

import pytest

from repro.core.resilience import Deadline, DeadlineExceeded, RetryPolicy
from repro.datasets import zipf_dataset
from repro.distributed import ShardedLES3, save_sharded
from repro.partitioning import MinTokenPartitioner
from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    armed,
    disarm,
    recording,
)
from repro.workloads import sample_queries


@pytest.fixture(autouse=True)
def _disarmed():
    disarm()
    yield
    disarm()


def minitoken_factory(shard_id: int) -> MinTokenPartitioner:
    return MinTokenPartitioner()


@pytest.fixture(scope="module")
def dataset():
    return zipf_dataset(150, 220, (2, 8), seed=31)


@pytest.fixture(scope="module")
def queries(dataset):
    return sample_queries(dataset, 6, seed=3)


@pytest.fixture()
def engine(dataset, tmp_path):
    """A fresh 4-shard engine, saved so process mode can rehydrate workers.

    Function-scoped on purpose: these tests poison pools, trip breakers,
    and mutate retry policies — none of that may leak between tests.
    """
    engine = ShardedLES3.build(
        dataset, 4, num_groups=10,
        partitioner_factory=minitoken_factory, strategy="range",
    )
    save_sharded(engine, tmp_path / "idx")
    engine.retry_policy = RetryPolicy(
        attempts=3, base_delay=0.0, multiplier=1.0, max_delay=0.0, jitter=0.0
    )
    yield engine
    engine.close()


def knn_matches(engine, queries, **kwargs):
    return [r.matches for r in engine.batch_knn_record(queries, 5, **kwargs)]


def shard_touching(engine, queries, shard_id):
    """A query whose serial kNN actually executes ``shard_id``."""
    needle = f"knn:shard={shard_id}"
    for query in queries:
        with recording() as trace:
            engine.knn_record(query, 5)
        if any(point == "shard.exec" and needle in detail for point, detail in trace):
            return query
    pytest.fail(f"no sample query dispatches shard {shard_id}")


class TestRetryAndResurrection:
    def test_transient_worker_fault_is_retried_bit_identical(
        self, engine, queries, tmp_path
    ):
        serial = knn_matches(engine, queries)
        token = tmp_path / "transient.tok"
        plan = FaultPlan(
            [FaultRule("shard.task", times=-1, token=str(token))]
        )
        with armed(plan):
            answers = knn_matches(engine, queries, parallel="process")
        assert token.exists(), "the injected fault never fired"
        assert answers == serial

    def test_killed_worker_pool_rebuilt_bit_identical(
        self, engine, queries, tmp_path
    ):
        serial = knn_matches(engine, queries)
        token = tmp_path / "kill.tok"
        plan = FaultPlan(
            [FaultRule("shard.task", action="kill", times=-1, token=str(token))]
        )
        with armed(plan):
            answers = knn_matches(engine, queries, parallel="process")
        assert token.exists(), "no worker was killed"
        assert answers == serial  # zero failed strict-mode requests

    def test_persistent_worker_failure_served_by_local_fallback(
        self, engine, queries
    ):
        serial = knn_matches(engine, queries)
        plan = FaultPlan([FaultRule("shard.task", times=-1)])
        with armed(plan):
            answers = knn_matches(engine, queries, parallel="process")
        assert answers == serial


class TestCircuitBreakerLifecycle:
    def test_breaker_opens_then_probe_recloses(self, engine, queries):
        clock = {"now": 0.0}
        engine._breaker_clock = lambda: clock["now"]
        engine.breaker_threshold = 2
        serial = knn_matches(engine, queries)

        with armed(FaultPlan([FaultRule("shard.task", times=-1)])):
            # Call 1: every attempt fails → threshold reached → open.
            assert knn_matches(engine, queries, parallel="process") == serial
            opened = [
                s for s, b in engine._breakers.items() if b.state == "open"
            ]
            assert opened, "no breaker opened under persistent failure"
            # Call 2: open breakers skip the pool entirely, answers still
            # come from the in-process fallback.
            assert knn_matches(engine, queries, parallel="process") == serial

        # The poisoned pool's workers inherited the armed plan: retire
        # them, advance past the cooldown, and let the half-open probe
        # find a healthy pool.
        engine.close()
        clock["now"] += engine.breaker_reset_seconds + 1.0
        assert knn_matches(engine, queries, parallel="process") == serial
        assert all(b.state == "closed" for b in engine._breakers.values())


class TestDegradedMode:
    def test_strict_serial_raises_on_shard_failure(self, engine, queries):
        query = shard_touching(engine, queries, 0)
        plan = FaultPlan([FaultRule("shard.exec", match="knn:shard=0", times=-1)])
        with armed(plan):
            with pytest.raises(InjectedFault):
                engine.knn_record(query, 5)

    def test_partial_serial_reports_failed_shards(self, engine, queries):
        query = shard_touching(engine, queries, 0)
        plan = FaultPlan([FaultRule("shard.exec", match="knn:shard=0", times=-1)])
        with armed(plan):
            result = engine.knn_record(query, 5, degraded="partial")
        assert result.stats.extra["failed_shards"] == [0]

    def test_partial_process_batch_reports_failed_shards(self, engine, queries):
        # Shard 0 fails in the workers *and* in the parent's fallback:
        # truly dead.  Partial mode answers from the healthy shards.
        plan = FaultPlan(
            [
                FaultRule("shard.task", match="knn:shard=0", times=-1),
                FaultRule("shard.exec", match="knn:shard=0", times=-1),
            ]
        )
        serial = engine.batch_knn_record(queries, 5)
        with armed(plan):
            partial = engine.batch_knn_record(
                queries, 5, parallel="process", degraded="partial"
            )
        flagged = [
            i for i, r in enumerate(partial)
            if r.stats.extra.get("failed_shards") == [0]
        ]
        assert flagged, "no query recorded the dead shard"
        untouched = [
            i for i, r in enumerate(partial) if "failed_shards" not in r.stats.extra
        ]
        for i in untouched:
            assert partial[i].matches == serial[i].matches

    def test_strict_process_batch_raises_when_fallback_fails_too(
        self, engine, queries
    ):
        plan = FaultPlan(
            [
                FaultRule("shard.task", match="knn:shard=0", times=-1),
                FaultRule("shard.exec", match="knn:shard=0", times=-1),
            ]
        )
        with armed(plan):
            with pytest.raises(InjectedFault):
                engine.batch_knn_record(queries, 5, parallel="process")


class TestDeadlines:
    def test_expired_deadline_refused_before_execution(self, engine, queries):
        for parallel in (None, "thread", "process"):
            with pytest.raises(DeadlineExceeded, match="before query execution"):
                engine.knn_record(queries[0], 5, parallel=parallel,
                                  deadline=Deadline(0.0))

    def test_slow_shard_serial(self, engine, queries):
        query = shard_touching(engine, queries, 0)
        plan = FaultPlan(
            [FaultRule("shard.exec", action="delay", delay_seconds=0.1, times=-1)]
        )
        with armed(plan):
            with pytest.raises(DeadlineExceeded):
                engine.knn_record(query, 5, deadline=Deadline(0.05))

    def test_slow_shard_thread(self, engine, queries):
        plan = FaultPlan(
            [FaultRule("shard.exec", action="delay", delay_seconds=0.2, times=-1)]
        )
        with armed(plan):
            with pytest.raises(DeadlineExceeded):
                knn_matches(engine, queries, parallel="thread",
                            deadline=Deadline(0.05))

    def test_slow_shard_process(self, engine, queries):
        plan = FaultPlan(
            [FaultRule("shard.task", action="delay", delay_seconds=0.5, times=-1)]
        )
        with armed(plan):
            with pytest.raises(DeadlineExceeded):
                knn_matches(engine, queries, parallel="process",
                            deadline=Deadline(0.05))

    def test_partial_mode_never_masks_deadlines(self, engine, queries):
        # DeadlineExceeded is fatal: degraded mode must not convert an
        # expired budget into failed_shards.
        query = shard_touching(engine, queries, 0)
        plan = FaultPlan(
            [FaultRule("shard.exec", action="delay", delay_seconds=0.1, times=-1)]
        )
        with armed(plan):
            with pytest.raises(DeadlineExceeded):
                engine.knn_record(query, 5, degraded="partial",
                                  deadline=Deadline(0.05))
