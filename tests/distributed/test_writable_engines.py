"""Regression tests: mutating out-of-core engines (``mode="mmap"``/``"lazy"``).

The historical failure modes this file pins down:

* ``mode="mmap"`` loads used to blow up (or silently build a throwaway
  in-RAM copy) on ``insert``/``remove``.  Now the mapped CSR view grows
  an in-RAM tail — the base segment stays the ``np.memmap`` pages — and
  the mutation is appended to the generation's ``delta.log``, so a
  reload (any mode) replays to exactly the mutated state.
* ``mode="lazy"`` sharded loads rebuild shard TGMs from disk on LRU
  eviction, so an in-memory mutation would be silently undone.  The
  engine must refuse with a clear :class:`PersistenceError` naming the
  modes that *can* mutate — not an ``AttributeError`` from some
  half-initialized write path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LES3, Dataset
from repro.core.delta import DELTA_LOG
from repro.core.persistence import PersistenceError, load_engine, save_engine
from repro.datasets import zipf_dataset
from repro.distributed import ShardedLES3, load_sharded, save_sharded
from repro.partitioning import MinTokenPartitioner
from repro.storage import MappedColumnarView


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    return zipf_dataset(90, 120, (2, 6), seed=11)


@pytest.fixture()
def engine_dir(dataset, tmp_path):
    engine = LES3.build(
        Dataset(list(dataset.records), dataset.universe.copy()),
        num_groups=5,
        partitioner=MinTokenPartitioner(),
    )
    directory = tmp_path / "engine"
    save_engine(engine, directory)
    return directory


@pytest.fixture()
def sharded_dir(dataset, tmp_path):
    engine = ShardedLES3.build(
        dataset, 3, num_groups=6,
        partitioner_factory=lambda shard_id: MinTokenPartitioner(),
        strategy="range",
    )
    directory = tmp_path / "sharded"
    save_sharded(engine, directory)
    return directory


class TestMmapMutation:
    def test_insert_lands_in_tail_not_in_mapped_base(self, engine_dir):
        engine = load_engine(engine_dir, mode="mmap")
        view = engine.dataset._columnar
        assert isinstance(view, MappedColumnarView)
        base_tokens = view._tokens
        base_nnz = view._base_nnz

        index, _group = engine.insert(["mmap-new-a", "mmap-new-b"])

        assert sorted(engine.tokens_of(index)) == ["mmap-new-a", "mmap-new-b"]
        assert engine.knn(["mmap-new-a", "mmap-new-b"], 1).matches[0][0] == index
        # The query synced the appended record into the CSR tail; the
        # mapped base segment is untouched — same ndarray over the same
        # pages, same length — and the new entries live past it.
        assert view._tokens is base_tokens
        assert view._base_nnz == base_nnz
        assert view._nnz > base_nnz

    def test_mmap_mutations_are_durable(self, engine_dir):
        engine = load_engine(engine_dir, mode="mmap")
        index, _ = engine.insert(["mmap-durable-x", "mmap-durable-y"])
        engine.remove(3)
        assert (engine_dir / DELTA_LOG).exists()

        for mode in ("memory", "mmap"):
            reloaded = load_engine(engine_dir, mode=mode)
            assert sorted(reloaded.tokens_of(index)) == [
                "mmap-durable-x", "mmap-durable-y",
            ]
            assert 3 in reloaded.removed
            query = sorted(engine.tokens_of(0))
            assert reloaded.knn(query, 5).matches == engine.knn(query, 5).matches

    def test_sharded_mmap_mutation_durable(self, sharded_dir):
        with load_sharded(sharded_dir, mode="mmap") as engine:
            index, shard, _group = engine.insert(["shard-mmap-a", "shard-mmap-b"])
            engine.remove(5)
            expected = engine.knn(["shard-mmap-a", "shard-mmap-b"], 3).matches
        assert (sharded_dir / DELTA_LOG).exists()
        with load_sharded(sharded_dir, mode="mmap") as reloaded:
            assert reloaded.knn(["shard-mmap-a", "shard-mmap-b"], 3).matches == expected
            assert 5 in reloaded.removed
            assert reloaded._shard_of[index] == shard


class TestLazyIsReadOnly:
    def test_insert_raises_persistence_error(self, sharded_dir):
        with load_sharded(sharded_dir, mode="lazy") as engine:
            with pytest.raises(PersistenceError, match="lazily loaded.*mode='mmap'"):
                engine.insert(["lazy-a", "lazy-b"])

    def test_remove_raises_persistence_error(self, sharded_dir):
        with load_sharded(sharded_dir, mode="lazy") as engine:
            with pytest.raises(PersistenceError, match="read-only|lazily loaded"):
                engine.remove(0)

    def test_refusal_leaves_engine_and_save_untouched(self, sharded_dir):
        with load_sharded(sharded_dir, mode="lazy") as engine:
            before = engine.knn(engine.tokens_of(0), 4).matches
            with pytest.raises(PersistenceError):
                engine.insert(["lazy-c"])
            assert engine.knn(engine.tokens_of(0), 4).matches == before
        assert not (sharded_dir / DELTA_LOG).exists()
        with load_sharded(sharded_dir) as reloaded:
            assert len(reloaded.removed) == 0


class TestNeverSavedDegrade:
    """Mutating after the backing generation vanished keeps the engine live."""

    def test_engine_survives_deleted_generation(self, engine_dir):
        import shutil

        engine = load_engine(engine_dir)
        shutil.rmtree(engine_dir)
        index, _ = engine.insert(["orphan-a", "orphan-b"])
        assert engine._delta is None  # degraded to never-saved
        assert engine.knn(["orphan-a", "orphan-b"], 1).matches[0][0] == index

    def test_sharded_survives_deleted_generation(self, sharded_dir):
        import shutil

        engine = load_sharded(sharded_dir)
        shutil.rmtree(sharded_dir)
        index, _shard, _group = engine.insert(["orphan-c", "orphan-d"])
        assert engine.source_dir is None
        assert engine.knn(["orphan-c", "orphan-d"], 1).matches[0][0] == index
        engine.close()


def test_mapped_base_tokens_stay_memmap_backed(engine_dir):
    """The insert must not silently materialize the base into RAM."""
    engine = load_engine(engine_dir, mode="mmap")
    view = engine.dataset._columnar
    engine.insert(["still-mapped"])
    base = view._tokens
    # np.memmap subclasses ndarray; the base chunk of flat_tokens() must
    # come from the mapped buffer, not a RAM copy.
    assert isinstance(base, np.ndarray)
    assert base.base is not None, "base tokens were copied out of the map"
