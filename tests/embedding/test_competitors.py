"""Tests for the Section 7.3 competitor embeddings: PCA, MDS, Binary."""

import numpy as np
import pytest

from repro.core import Dataset
from repro.core.sets import SetRecord
from repro.embedding import (
    BinaryEncodingEmbedding,
    MDSEmbedding,
    PCAEmbedding,
    distance_matrix,
    nhot_matrix,
)
from repro.core.similarity import get_measure


class TestNHot:
    def test_shape_and_counts(self, tiny_dataset):
        matrix = nhot_matrix(tiny_dataset)
        assert matrix.shape == (6, 4)
        assert matrix.sum() == sum(len(r) for r in tiny_dataset.records)

    def test_multiset_counts(self):
        dataset = Dataset.from_token_lists([["a", "a", "b"]])
        matrix = nhot_matrix(dataset).toarray()
        np.testing.assert_array_equal(matrix, [[2, 1]])


class TestPCA:
    def test_dim_capped_by_matrix_rank(self, tiny_dataset):
        pca = PCAEmbedding(dim=50).fit(tiny_dataset)
        assert pca.dim <= min(6, 4) - 1

    def test_transform_matches_transform_all(self, zipf_small):
        pca = PCAEmbedding(dim=4).fit(zipf_small)
        all_reps = pca.transform_all(zipf_small)
        for i in [0, 7, 42]:
            np.testing.assert_allclose(
                all_reps[i], pca.transform(zipf_small.records[i]), atol=1e-8
            )

    def test_similar_sets_embed_close(self, zipf_small):
        """PCA scores of near-duplicates should be closer than random pairs."""
        pca = PCAEmbedding(dim=6).fit(zipf_small)
        base = zipf_small.records[0]
        near = SetRecord(list(base.distinct)[: max(len(base.distinct) - 1, 1)])
        far = zipf_small.records[50]
        rep = pca.transform(base)
        assert np.linalg.norm(rep - pca.transform(near)) <= np.linalg.norm(
            rep - pca.transform(far)
        ) + 1e-9

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PCAEmbedding().transform(SetRecord([0]))


class TestMDS:
    @pytest.fixture(scope="class")
    def small_sample(self, zipf_small):
        import random

        return zipf_small.sample(40, random.Random(0))

    def test_distance_matrix_symmetric_zero_diagonal(self, small_sample):
        distances = distance_matrix(small_sample, get_measure("jaccard"))
        np.testing.assert_allclose(distances, distances.T)
        np.testing.assert_allclose(np.diag(distances), 0.0)

    def test_fitted_coords_preserve_distance_order(self, small_sample):
        mds = MDSEmbedding(dim=8).fit(small_sample)
        coords = mds.transform_all(small_sample)
        measure = get_measure("jaccard")
        # Most-similar pair should not be embedded farther than most-dissimilar.
        distances = distance_matrix(small_sample, measure)
        np.fill_diagonal(distances, np.inf)
        closest = np.unravel_index(np.argmin(distances), distances.shape)
        distances[distances == np.inf] = -np.inf
        farthest = np.unravel_index(np.argmax(distances), distances.shape)
        close_embedding = np.linalg.norm(coords[closest[0]] - coords[closest[1]])
        far_embedding = np.linalg.norm(coords[farthest[0]] - coords[farthest[1]])
        assert close_embedding <= far_embedding

    def test_out_of_sample_transform(self, small_sample):
        mds = MDSEmbedding(dim=4).fit(small_sample)
        unseen = SetRecord([0, 1, 2])
        vector = mds.transform(unseen)
        assert vector.shape == (mds.dim,)
        assert np.isfinite(vector).all()

    def test_needs_two_records(self):
        dataset = Dataset.from_token_lists([["a"]])
        with pytest.raises(ValueError):
            MDSEmbedding().fit(dataset)


class TestBinaryEncoding:
    def test_unique_codes_for_distinct_sets(self, tiny_dataset):
        binary = BinaryEncodingEmbedding().fit(tiny_dataset)
        codes = {tuple(binary.transform(record)) for record in tiny_dataset.records}
        assert len(codes) == len(set(tiny_dataset.records))

    def test_content_blind(self):
        """Near-identical sets can get arbitrarily distant codes."""
        dataset = Dataset.from_token_lists([["a", "b", "c"], ["a", "b", "d"], ["x"]])
        binary = BinaryEncodingEmbedding().fit(dataset)
        codes = binary.transform_all(dataset)
        # Codes are ids in binary: 0, 1, 2 — unrelated to token overlap.
        assert codes[0].tolist() != codes[1].tolist()

    def test_dim_is_log_of_count(self, zipf_small):
        binary = BinaryEncodingEmbedding().fit(zipf_small)
        distinct = len(set(zipf_small.records))
        assert binary.dim == int(np.ceil(np.log2(distinct)))

    def test_unseen_record_hash_fallback(self, tiny_dataset):
        binary = BinaryEncodingEmbedding().fit(tiny_dataset)
        vector = binary.transform(SetRecord([0, 1, 2, 3]))
        assert vector.shape == (binary.dim,)
        assert set(vector.tolist()) <= {0.0, 1.0}
