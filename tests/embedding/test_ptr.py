"""Tests for PTR, including the paper's worked example (Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dataset
from repro.core.sets import SetRecord
from repro.embedding import PTREmbedding, PTRHalfEmbedding, build_path_table


class TestPathTable:
    def test_paper_table1(self):
        """T = {A,B,C,D} with ids 0..3 must reproduce Table 1 exactly."""
        table = build_path_table(4)
        expected = np.array(
            [
                [1, 1, 0, 0],  # A
                [1, 0, 0, 1],  # B
                [0, 1, 1, 0],  # C
                [0, 0, 1, 1],  # D
            ],
            dtype=float,
        )
        np.testing.assert_array_equal(table, expected)

    def test_width_is_twice_height(self):
        assert build_path_table(100).shape == (100, 2 * 7)

    def test_paths_unique(self):
        table = build_path_table(37)
        rows = {tuple(row) for row in table}
        assert len(rows) == 37

    def test_second_half_complements_first(self):
        table = build_path_table(16)
        height = table.shape[1] // 2
        np.testing.assert_array_equal(table[:, height:], 1 - table[:, :height])

    def test_single_token_universe(self):
        assert build_path_table(1).shape == (1, 2)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            build_path_table(0)


class TestPTREmbedding:
    def test_paper_example_sets(self):
        """Rep({A,B,C}) = [2,2,1,1] and Rep({B,D}) = [1,0,1,2] (Section 5.3)."""
        dataset = Dataset.from_token_lists([["A", "B", "C", "D"]])
        ptr = PTREmbedding().fit(dataset)
        abc = SetRecord([0, 1, 2])
        bd = SetRecord([1, 3])
        np.testing.assert_array_equal(ptr.transform(abc), [2, 2, 1, 1])
        np.testing.assert_array_equal(ptr.transform(bd), [1, 0, 1, 2])

    def test_multiset_differentiation(self):
        """Rep({A}) = [1,1,0,0] vs Rep({A,A}) = [2,2,0,0] (Section 5.3)."""
        dataset = Dataset.from_token_lists([["A", "B", "C", "D"]])
        ptr = PTREmbedding().fit(dataset)
        np.testing.assert_array_equal(ptr.transform(SetRecord([0])), [1, 1, 0, 0])
        np.testing.assert_array_equal(ptr.transform(SetRecord([0, 0])), [2, 2, 0, 0])

    def test_transform_all_matches_transform(self, tiny_dataset):
        ptr = PTREmbedding().fit(tiny_dataset)
        all_reps = ptr.transform_all(tiny_dataset)
        for i, record in enumerate(tiny_dataset.records):
            np.testing.assert_array_equal(all_reps[i], ptr.transform(record))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PTREmbedding().transform(SetRecord([0]))
        with pytest.raises(RuntimeError):
            _ = PTREmbedding().dim

    def test_out_of_table_tokens_ignored(self, tiny_dataset):
        ptr = PTREmbedding().fit(tiny_dataset)
        with_phantom = ptr.transform(SetRecord([0, 999]))
        without = ptr.transform(SetRecord([0]))
        np.testing.assert_array_equal(with_phantom, without)

    @settings(max_examples=50)
    @given(
        a=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=10),
        b=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=10),
    )
    def test_full_ptr_injective_on_multisets(self, a, b):
        """Distinct multisets must have distinct full-PTR representations."""
        table = build_path_table(64)
        rep_a = table[sorted(a)].sum(axis=0)
        rep_b = table[sorted(b)].sum(axis=0)
        if SetRecord(a) != SetRecord(b):
            assert not np.array_equal(rep_a, rep_b)
        else:
            np.testing.assert_array_equal(rep_a, rep_b)


class TestSetSeparationFriendly:
    """Definition 5.1 / Figure 6: token membership ↔ axis-aligned dominance."""

    @settings(max_examples=50)
    @given(
        tokens=st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=8),
        target=st.integers(min_value=0, max_value=31),
    )
    def test_membership_implies_componentwise_dominance(self, tokens, target):
        """If t ∈ S then Rep(S) ⪰ PT[t] componentwise — every set containing
        t lies in the axis-aligned half-space anchored at Rep({t}), the
        geometric separation the paper illustrates in Figure 6."""
        table = build_path_table(32)
        rep = table[sorted(tokens)].sum(axis=0)
        if target in tokens:
            assert (rep >= table[target] - 1e-12).all()

    def test_half_space_contains_all_member_sets(self):
        """Concrete Figure 6 scenario: all sets containing B dominate PT[B]."""
        table = build_path_table(4)
        b = 1
        member_sets = [[b], [0, b], [b, 2], [0, b, 2, 3]]
        for tokens in member_sets:
            rep = table[sorted(tokens)].sum(axis=0)
            assert (rep >= table[b]).all()


class TestPTRHalf:
    def test_half_width(self, tiny_dataset):
        full = PTREmbedding().fit(tiny_dataset)
        half = PTRHalfEmbedding().fit(tiny_dataset)
        assert half.dim == full.dim // 2

    def test_known_collision(self):
        """Section 5.3: {A} and {B,C} collide on the half table."""
        dataset = Dataset.from_token_lists([["A", "B", "C", "D"]])
        half = PTRHalfEmbedding().fit(dataset)
        rep_a = half.transform(SetRecord([0]))
        rep_bc = half.transform(SetRecord([1, 2]))
        np.testing.assert_array_equal(rep_a, rep_bc)

    def test_full_resolves_that_collision(self):
        dataset = Dataset.from_token_lists([["A", "B", "C", "D"]])
        full = PTREmbedding().fit(dataset)
        assert not np.array_equal(
            full.transform(SetRecord([0])), full.transform(SetRecord([1, 2]))
        )
