"""Unit tests for the graph substrate."""

import pytest

from repro.graphs import Graph


class TestGraph:
    def test_add_edge_symmetric(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 2.0)
        assert dict(graph.neighbors(0)) == {1: 2.0}
        assert dict(graph.neighbors(1)) == {0: 2.0}

    def test_parallel_edges_accumulate(self):
        graph = Graph(2)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 1, 0.5)
        assert dict(graph.neighbors(0)) == {1: 1.5}
        assert graph.num_edges() == 1

    def test_self_loops_ignored(self):
        graph = Graph(2)
        graph.add_edge(1, 1)
        assert graph.num_edges() == 0

    def test_degree_and_edges(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert graph.degree(0) == 2
        assert sorted((u, v) for u, v, _ in graph.edges()) == [(0, 1), (0, 2)]

    def test_vertex_weights_default_one(self):
        graph = Graph(3)
        assert graph.total_vertex_weight() == 3

    def test_cut_weight(self):
        graph = Graph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        graph.add_edge(2, 3, 4.0)
        assert graph.cut_weight([0, 1]) == pytest.approx(2.0)
        assert graph.cut_weight([0, 1, 2]) == pytest.approx(4.0)
        assert graph.cut_weight([]) == 0.0

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)
