"""Tests for the multilevel balanced graph partitioner."""

import random

import pytest

from repro.graphs import Graph, bisect, partition_graph


def planted_graph(num_clusters=4, cluster_size=30, seed=0):
    """Dense intra-cluster edges, sparse inter-cluster edges."""
    rng = random.Random(seed)
    n = num_clusters * cluster_size
    graph = Graph(n)
    for cluster in range(num_clusters):
        members = list(range(cluster * cluster_size, (cluster + 1) * cluster_size))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < 0.4:
                    graph.add_edge(u, v, 1.0)
    for _ in range(n // 4):  # weak cross edges
        u, v = rng.randrange(n), rng.randrange(n)
        graph.add_edge(u, v, 0.05)
    return graph


class TestBisect:
    def test_sides_are_balanced(self):
        graph = planted_graph(2, 40)
        side = bisect(graph, tolerance=0.1, seed=1)
        counts = [side.count(0), side.count(1)]
        assert min(counts) >= 0.4 * len(side) / 2 * 2 * 0.5  # loose sanity floor
        assert abs(counts[0] - counts[1]) <= 0.25 * len(side)

    def test_planted_bisection_found(self):
        graph = planted_graph(2, 40, seed=2)
        side = bisect(graph, seed=3)
        # Most of cluster 0 should land on one side.
        first_cluster_sides = side[:40]
        majority = max(first_cluster_sides.count(0), first_cluster_sides.count(1))
        assert majority >= 32

    def test_edgeless_graph_does_not_crash(self):
        graph = Graph(10)
        side = bisect(graph, seed=0)
        assert set(side) <= {0, 1}


class TestPartitionGraph:
    def test_every_vertex_assigned(self):
        graph = planted_graph()
        assignment = partition_graph(graph, 4, seed=0)
        assert len(assignment) == graph.num_vertices
        assert set(assignment) == {0, 1, 2, 3}

    def test_parts_roughly_balanced(self):
        graph = planted_graph()
        assignment = partition_graph(graph, 4, seed=0)
        sizes = [assignment.count(p) for p in range(4)]
        assert max(sizes) <= 2.0 * min(sizes)

    def test_cut_better_than_random(self):
        graph = planted_graph(seed=5)
        assignment = partition_graph(graph, 4, seed=1)
        rng = random.Random(2)
        random_assignment = [rng.randrange(4) for _ in range(graph.num_vertices)]

        def total_cut(assign):
            return sum(
                weight for u, v, weight in graph.edges() if assign[u] != assign[v]
            )

        assert total_cut(assignment) < total_cut(random_assignment)

    def test_non_power_of_two_parts(self):
        graph = planted_graph(3, 20)
        assignment = partition_graph(graph, 3, seed=0)
        assert set(assignment) == {0, 1, 2}

    def test_single_part(self):
        graph = planted_graph(2, 10)
        assert set(partition_graph(graph, 1)) == {0}

    def test_invalid_part_count(self):
        with pytest.raises(ValueError):
            partition_graph(Graph(3), 0)
