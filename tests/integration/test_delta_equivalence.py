"""Base+delta engines vs two independent oracles — the exactness contract.

A loaded generation with pending ``delta.log`` ops must answer every
query bit-identically to:

* **verify="scalar"** — the same engine re-verifying candidates with the
  scalar (per-record Python) path instead of the columnar kernels, and
* **a from-scratch rebuild** — an engine built over a dataset that
  already contains every inserted record as base data (no delta at all),
  with the same tombstones applied.

and this must hold across measures × shard placements × parallel
execution modes × load modes.  The delta is a durability mechanism, not
an approximation: no branch of the matrix is allowed to drift.
"""

from __future__ import annotations

import pytest

from repro.core import LES3, Dataset
from repro.core.engine import PARALLEL_MODES
from repro.core.persistence import _load_engine, save_engine
from repro.datasets import zipf_dataset
from repro.distributed.persistence import _load_sharded, save_sharded
from repro.distributed.sharded import ShardedLES3
from repro.partitioning import MinTokenPartitioner

INSERTS = [
    ["delta-eq-a", "delta-eq-b"],
    ["delta-eq-b", "delta-eq-c", "delta-eq-d"],
    ["7", "11", "delta-eq-a"],
]
REMOVALS = (0, 9, 41)


def minitoken_factory(shard_id: int) -> MinTokenPartitioner:
    return MinTokenPartitioner()


def base_token_lists(num_records=110, num_tokens=170, seed=29):
    dataset = zipf_dataset(num_records, num_tokens, (2, 6), seed=seed)
    # The text save format stringifies tokens, so loaded engines see
    # string tokens; feed the oracle strings too so universes agree.
    return [
        [str(dataset.universe.token_of(t)) for t in record.tokens]
        for record in dataset.records
    ]


def queries_for(engine):
    return [engine.tokens_of(i) for i in (2, 17, 60)] + [
        ["delta-eq-a", "delta-eq-b"],
        ["delta-eq-c", "delta-eq-d", "unseen-token"],
    ]


def mutate(engine):
    """The canonical delta workload: three inserts, three tombstones."""
    for tokens in INSERTS:
        engine.insert(tokens)
    for record_index in REMOVALS:
        engine.remove(record_index)


def rebuilt_oracle(token_lists, measure):
    """From-scratch build with the inserts as base data — no delta log."""
    dataset = Dataset.from_token_lists(token_lists + INSERTS)
    oracle = LES3.build(
        dataset, num_groups=6, partitioner=MinTokenPartitioner(), measure=measure
    )
    for record_index in REMOVALS:
        oracle.remove(record_index)
    return oracle


def assert_matches_oracles(engine, oracle, queries, **query_kwargs):
    for query in queries:
        for k in (1, 4, 9):
            got = engine.knn(query, k, **query_kwargs).matches
            assert got == oracle.knn(query, k).matches
            assert got == engine.knn(query, k, verify="scalar", **query_kwargs).matches
        for threshold in (0.0, 0.35, 0.8):
            got = engine.range(query, threshold, **query_kwargs).matches
            assert got == oracle.range(query, threshold).matches
            assert (
                got
                == engine.range(query, threshold, verify="scalar", **query_kwargs).matches
            )


class TestSingleEngineDeltaOracle:
    @pytest.fixture(scope="class")
    def token_lists(self):
        return base_token_lists()

    @pytest.mark.parametrize("measure", ["jaccard", "cosine", "dice", "containment"])
    @pytest.mark.parametrize("mode", ["memory", "mmap"])
    def test_measures_by_load_mode(self, token_lists, tmp_path, measure, mode):
        built = LES3.build(
            Dataset.from_token_lists(token_lists), num_groups=6,
            partitioner=MinTokenPartitioner(), measure=measure,
        )
        directory = tmp_path / f"{measure}-{mode}"
        save_engine(built, directory)
        engine = _load_engine(directory, mode=mode)
        mutate(engine)
        assert engine._delta.num_ops == len(INSERTS) + len(REMOVALS)
        oracle = rebuilt_oracle(token_lists, measure)
        assert_matches_oracles(engine, oracle, queries_for(engine))

    def test_reloaded_delta_still_matches(self, token_lists, tmp_path):
        """The replayed delta (not just the live ops) matches the rebuild."""
        built = LES3.build(
            Dataset.from_token_lists(token_lists), num_groups=6,
            partitioner=MinTokenPartitioner(),
        )
        directory = tmp_path / "replayed"
        save_engine(built, directory)
        mutate(_load_engine(directory))
        oracle = rebuilt_oracle(token_lists, "jaccard")
        for mode in ("memory", "mmap"):
            engine = _load_engine(directory, mode=mode)
            assert_matches_oracles(engine, oracle, queries_for(engine))


class TestShardedDeltaOracle:
    @pytest.fixture(scope="class")
    def token_lists(self):
        return base_token_lists(seed=37)

    def saved_sharded(self, token_lists, tmp_path, *, shards=3, strategy="hash",
                      measure="jaccard"):
        built = ShardedLES3.build(
            Dataset.from_token_lists(token_lists), shards, num_groups=6,
            partitioner_factory=minitoken_factory, strategy=strategy,
            measure=measure,
        )
        directory = tmp_path / "sharded"
        save_sharded(built, directory)
        return directory

    @pytest.mark.parametrize("strategy", ["hash", "size", "range"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_placements_by_shard_count(self, token_lists, tmp_path, strategy, shards):
        directory = self.saved_sharded(
            token_lists, tmp_path, shards=shards, strategy=strategy
        )
        with _load_sharded(directory) as engine:
            mutate(engine)
            oracle = rebuilt_oracle(token_lists, "jaccard")
            assert_matches_oracles(engine, oracle, queries_for(engine))

    @pytest.mark.parametrize("parallel", PARALLEL_MODES)
    def test_parallel_modes_replay_the_delta(self, token_lists, tmp_path, parallel):
        """`parallel="process"` workers rehydrate from the `+N` epoch —
        they must replay exactly the pending ops, not serve the stale base."""
        directory = self.saved_sharded(token_lists, tmp_path)
        with _load_sharded(directory) as engine:
            mutate(engine)
            oracle = rebuilt_oracle(token_lists, "jaccard")
            assert_matches_oracles(
                engine, oracle, queries_for(engine), parallel=parallel
            )

    @pytest.mark.parametrize("measure", ["cosine", "containment"])
    def test_measures(self, token_lists, tmp_path, measure):
        directory = self.saved_sharded(token_lists, tmp_path, measure=measure)
        with _load_sharded(directory, mode="mmap") as engine:
            mutate(engine)
            oracle = rebuilt_oracle(token_lists, measure)
            assert_matches_oracles(engine, oracle, queries_for(engine))
