"""Integration tests: full build → query → update → query cycles."""

import pytest

from repro.baselines import BruteForceSearch
from repro.core import LES3, Dataset, HierarchicalTGM
from repro.datasets import make_dataset, zipf_dataset
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def engine(self):
        dataset = zipf_dataset(400, 600, (2, 10), seed=21)
        partitioner = L2PPartitioner(
            pairs_per_model=800, epochs=2, initial_groups=8, min_group_size=10, seed=0
        )
        return LES3.build(dataset, num_groups=24, partitioner=partitioner)

    def test_knn_exact_after_build(self, engine):
        brute = BruteForceSearch(engine.dataset, engine.measure)
        for query in sample_queries(engine.dataset, 15, seed=1):
            expected = sorted(s for _, s in brute.knn_search(query, 10).matches)
            actual = sorted(s for _, s in engine.knn_record(query, 10).matches)
            assert actual == pytest.approx(expected)

    def test_range_exact_after_build(self, engine):
        brute = BruteForceSearch(engine.dataset, engine.measure)
        for query in sample_queries(engine.dataset, 15, seed=2):
            assert (
                engine.range_record(query, 0.6).matches
                == brute.range_search(query, 0.6).matches
            )

    def test_pruning_nontrivial(self, engine):
        total_candidates = 0
        for query in sample_queries(engine.dataset, 20, seed=3):
            total_candidates += engine.range_record(query, 0.8).stats.candidates_verified
        assert total_candidates < 20 * len(engine.dataset) * 0.8

    def test_insert_cycle_stays_exact(self, engine):
        for i in range(30):
            tokens = [f"fresh-{i}-{j}" for j in range(4)]
            engine.insert(tokens)
        brute = BruteForceSearch(engine.dataset, engine.measure)
        for query in sample_queries(engine.dataset, 10, seed=4):
            expected = sorted(s for _, s in brute.knn_search(query, 5).matches)
            actual = sorted(s for _, s in engine.knn_record(query, 5).matches)
            assert actual == pytest.approx(expected)

    def test_inserted_set_is_its_own_nearest_neighbour(self, engine):
        index, _ = engine.insert(["uniq-a", "uniq-b", "uniq-c"])
        result = engine.knn(["uniq-a", "uniq-b", "uniq-c"], k=1)
        assert result.matches[0] == (index, 1.0)


class TestCascadeToHTGM:
    def test_level_partitions_feed_htgm(self):
        dataset = zipf_dataset(300, 400, (2, 8), seed=22)
        l2p = L2PPartitioner(
            pairs_per_model=500, epochs=2, initial_groups=4, min_group_size=8, seed=0
        )
        final = l2p.partition(dataset, 16)
        levels = [l2p.level_partitions_[0].groups, final.groups]
        htgm = HierarchicalTGM(dataset, levels)
        brute = BruteForceSearch(dataset)
        for query in sample_queries(dataset, 10, seed=5):
            assert (
                htgm.range_search(dataset, query, 0.7).matches
                == brute.range_search(query, 0.7).matches
            )


class TestRealLikeDatasets:
    def test_kosarak_like_pipeline(self):
        dataset = make_dataset("KOSARAK", scale=0.0005, seed=3)
        engine = LES3.build(
            dataset,
            num_groups=8,
            partitioner=L2PPartitioner(
                pairs_per_model=400, epochs=2, initial_groups=4, min_group_size=10, seed=0
            ),
        )
        brute = BruteForceSearch(dataset)
        for query in sample_queries(dataset, 8, seed=6):
            expected = sorted(s for _, s in brute.knn_search(query, 5).matches)
            actual = sorted(s for _, s in engine.knn_record(query, 5).matches)
            assert actual == pytest.approx(expected)

    def test_roaring_backend_pipeline(self):
        dataset = make_dataset("AOL", scale=0.0002, seed=4)
        from repro.partitioning import MinTokenPartitioner

        engine = LES3.build(
            dataset, num_groups=6, partitioner=MinTokenPartitioner(), backend="roaring"
        )
        brute = BruteForceSearch(dataset)
        query = dataset.records[0]
        assert engine.range_record(query, 0.5).matches == brute.range_search(query, 0.5).matches


class TestPersistenceRoundtrip:
    def test_save_load_build_query(self, tmp_path):
        dataset = zipf_dataset(150, 200, (2, 6), seed=23)
        path = tmp_path / "data.txt"
        dataset.save(path)
        reloaded = Dataset.load(path)
        from repro.partitioning import MinTokenPartitioner

        engine = LES3.build(reloaded, num_groups=5, partitioner=MinTokenPartitioner())
        brute = BruteForceSearch(reloaded)
        query = reloaded.records[7]
        assert engine.range_record(query, 0.4).matches == brute.range_search(query, 0.4).matches
