"""Failure injection and adversarial edge cases across the stack."""

import pytest

from repro.baselines import BruteForceSearch, DualTransSearch, InvertedIndexSearch
from repro.core import LES3, Dataset, TokenGroupMatrix, knn_search, range_search
from repro.core.sets import SetRecord
from repro.partitioning import MinTokenPartitioner, Partition


class TestDegenerateDatasets:
    def test_single_set_database(self):
        dataset = Dataset.from_token_lists([["only"]])
        engine = LES3.build(dataset, num_groups=4, partitioner=MinTokenPartitioner())
        assert engine.knn(["only"], k=1).matches == [(0, 1.0)]
        assert engine.knn(["only"], k=10).matches == [(0, 1.0)]

    def test_all_identical_sets(self):
        dataset = Dataset.from_token_lists([["a", "b"]] * 9)
        engine = LES3.build(dataset, num_groups=3, partitioner=MinTokenPartitioner())
        result = engine.range(["a", "b"], threshold=1.0)
        assert len(result) == 9
        assert all(similarity == 1.0 for _, similarity in result.matches)

    def test_singleton_groups(self, tiny_dataset):
        partition = Partition([[i] for i in range(len(tiny_dataset))])
        tgm = TokenGroupMatrix(tiny_dataset, partition.groups)
        brute = BruteForceSearch(tiny_dataset)
        query = tiny_dataset.records[2]
        assert range_search(tiny_dataset, tgm, query, 0.3).matches == brute.range_search(
            query, 0.3
        ).matches

    def test_disjoint_query_returns_empty_range(self, tiny_dataset):
        tgm = TokenGroupMatrix(tiny_dataset, [[0, 1, 2], [3, 4, 5]])
        query = SetRecord([999])  # phantom token
        assert range_search(tiny_dataset, tgm, query, 0.5).matches == []

    def test_disjoint_query_knn_still_returns_k(self, tiny_dataset):
        tgm = TokenGroupMatrix(tiny_dataset, [[0, 1, 2], [3, 4, 5]])
        query = SetRecord([999])
        result = knn_search(tiny_dataset, tgm, query, 3)
        assert len(result) == 3
        assert all(similarity == 0.0 for _, similarity in result.matches)


class TestBoundaryParameters:
    @pytest.fixture(scope="class")
    def stack(self, zipf_small):
        partition = MinTokenPartitioner().partition(zipf_small, 8)
        return zipf_small, TokenGroupMatrix(zipf_small, partition.groups)

    def test_threshold_exactly_zero(self, stack):
        dataset, tgm = stack
        result = range_search(dataset, tgm, dataset.records[0], 0.0)
        assert len(result) == len(dataset)

    def test_threshold_exactly_one(self, stack):
        dataset, tgm = stack
        result = range_search(dataset, tgm, dataset.records[0], 1.0)
        assert all(similarity == 1.0 for _, similarity in result.matches)

    def test_k_equals_database_size(self, stack):
        dataset, tgm = stack
        result = knn_search(dataset, tgm, dataset.records[0], len(dataset))
        assert len(result) == len(dataset)

    @pytest.mark.parametrize("threshold", [-0.01, 1.01, float("nan")])
    def test_bad_thresholds_rejected_everywhere(self, stack, threshold):
        dataset, tgm = stack
        query = dataset.records[0]
        for call in (
            lambda: range_search(dataset, tgm, query, threshold),
            lambda: BruteForceSearch(dataset).range_search(query, threshold),
            lambda: InvertedIndexSearch(dataset).range_search(query, threshold),
            lambda: DualTransSearch(dataset, dim=4).range_search(query, threshold),
        ):
            with pytest.raises(ValueError):
                call()

    @pytest.mark.parametrize("k", [0, -5])
    def test_bad_k_rejected_everywhere(self, stack, k):
        dataset, tgm = stack
        query = dataset.records[0]
        for call in (
            lambda: knn_search(dataset, tgm, query, k),
            lambda: BruteForceSearch(dataset).knn_search(query, k),
            lambda: InvertedIndexSearch(dataset).knn_search(query, k),
            lambda: DualTransSearch(dataset, dim=4).knn_search(query, k),
        ):
            with pytest.raises(ValueError):
                call()


class TestCorruptionDetection:
    def test_partition_with_gap_not_covering(self, tiny_dataset):
        partition = Partition([[0, 1], [3, 4]])  # records 2, 5 missing
        assert not partition.covers(len(tiny_dataset))

    def test_tgm_over_partial_partition_still_bounds_correctly(self, tiny_dataset):
        """A TGM over a subset of the data is still sound for that subset."""
        tgm = TokenGroupMatrix(tiny_dataset, [[0, 1], [3, 4]])
        query = tiny_dataset.records[0]
        bounds = tgm.upper_bounds(list(query.distinct), len(query))
        for group_id, members in enumerate(tgm.group_members):
            for record_index in members:
                assert bounds[group_id] >= tgm.measure(
                    query, tiny_dataset.records[record_index]
                )

    def test_multiset_queries_against_set_database(self, zipf_small):
        partition = MinTokenPartitioner().partition(zipf_small, 6)
        tgm = TokenGroupMatrix(zipf_small, partition.groups)
        brute = BruteForceSearch(zipf_small)
        base = list(zipf_small.records[0].distinct)
        query = SetRecord(base + base[:2])  # duplicated tokens → multiset
        assert range_search(zipf_small, tgm, query, 0.3).matches == brute.range_search(
            query, 0.3
        ).matches
