"""End-to-end exactness for every similarity measure × both TGM backends.

The TGM's soundness argument (Theorem 3.1) is per-measure; this matrix test
pins it operationally: for each measure the indexed search must return the
brute-force answer, on plain-set and multiset data alike.
"""

import pytest

from repro.baselines import BruteForceSearch
from repro.core import MEASURES, Dataset, TokenGroupMatrix, knn_search, range_search
from repro.partitioning import MinTokenPartitioner
from repro.workloads import perturbed_queries, sample_queries

MEASURE_NAMES = sorted(MEASURES)


@pytest.fixture(scope="module")
def multiset_data():
    import random

    rng = random.Random(90)
    token_lists = []
    for _ in range(180):
        base = [str(rng.randrange(90)) for _ in range(rng.randint(2, 7))]
        if rng.random() < 0.4 and base:
            base.append(rng.choice(base))
        token_lists.append(base)
    return Dataset.from_token_lists(token_lists)


@pytest.mark.parametrize("measure", MEASURE_NAMES)
@pytest.mark.parametrize("backend", ["dense", "roaring"])
class TestMeasureBackendMatrix:
    def test_range_exact(self, zipf_small, measure, backend):
        partition = MinTokenPartitioner().partition(zipf_small, 8)
        tgm = TokenGroupMatrix(zipf_small, partition.groups, measure, backend)
        brute = BruteForceSearch(zipf_small, measure)
        for query in sample_queries(zipf_small, 6, seed=91):
            assert (
                range_search(zipf_small, tgm, query, 0.6).matches
                == brute.range_search(query, 0.6).matches
            )

    def test_knn_exact(self, zipf_small, measure, backend):
        partition = MinTokenPartitioner().partition(zipf_small, 8)
        tgm = TokenGroupMatrix(zipf_small, partition.groups, measure, backend)
        brute = BruteForceSearch(zipf_small, measure)
        for query in perturbed_queries(zipf_small, 5, seed=92):
            expected = sorted(s for _, s in brute.knn_search(query, 8).matches)
            actual = sorted(s for _, s in knn_search(zipf_small, tgm, query, 8).matches)
            assert actual == pytest.approx(expected)


@pytest.mark.parametrize("measure", MEASURE_NAMES)
class TestMeasureMultisets:
    def test_range_exact_on_multisets(self, multiset_data, measure):
        partition = MinTokenPartitioner().partition(multiset_data, 6)
        tgm = TokenGroupMatrix(multiset_data, partition.groups, measure)
        brute = BruteForceSearch(multiset_data, measure)
        for query in sample_queries(multiset_data, 8, seed=93):
            assert (
                range_search(multiset_data, tgm, query, 0.5).matches
                == brute.range_search(query, 0.5).matches
            )

    def test_self_query_is_top_match(self, multiset_data, measure):
        partition = MinTokenPartitioner().partition(multiset_data, 6)
        tgm = TokenGroupMatrix(multiset_data, partition.groups, measure)
        query = multiset_data.records[0]
        result = knn_search(multiset_data, tgm, query, 1)
        assert result.matches[0][1] == pytest.approx(1.0)
