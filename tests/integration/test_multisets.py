"""Multiset semantics across the whole stack (paper Section 2 supports them)."""

import random

import pytest

from repro.baselines import BruteForceSearch, DualTransSearch, InvertedIndexSearch
from repro.core import Dataset, TokenGroupMatrix, knn_search, range_search
from repro.core.sets import SetRecord
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries


@pytest.fixture(scope="module")
def multiset_dataset():
    """Sets where ~half the records duplicate some tokens."""
    rng = random.Random(80)
    token_lists = []
    for _ in range(250):
        base = [str(rng.randrange(120)) for _ in range(rng.randint(2, 8))]
        if rng.random() < 0.5 and base:
            base += [rng.choice(base)] * rng.randint(1, 2)
        token_lists.append(base)
    return Dataset.from_token_lists(token_lists)


@pytest.fixture(scope="module")
def stack(multiset_dataset):
    partition = MinTokenPartitioner().partition(multiset_dataset, 10)
    return {
        "dataset": multiset_dataset,
        "tgm": TokenGroupMatrix(multiset_dataset, partition.groups),
        "brute": BruteForceSearch(multiset_dataset),
        "invidx": InvertedIndexSearch(multiset_dataset),
        "dualtrans": DualTransSearch(multiset_dataset, dim=8),
    }


class TestMultisetExactness:
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_range_agreement(self, stack, threshold):
        for query in sample_queries(stack["dataset"], 12, seed=81):
            expected = stack["brute"].range_search(query, threshold).matches
            assert stack["invidx"].range_search(query, threshold).matches == expected
            assert stack["dualtrans"].range_search(query, threshold).matches == expected
            assert (
                range_search(stack["dataset"], stack["tgm"], query, threshold).matches
                == expected
            )

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_knn_agreement(self, stack, k):
        for query in sample_queries(stack["dataset"], 8, seed=82):
            expected = sorted(s for _, s in stack["brute"].knn_search(query, k).matches)
            for name in ("invidx", "dualtrans"):
                actual = sorted(s for _, s in stack[name].knn_search(query, k).matches)
                assert actual == pytest.approx(expected), name
            actual = sorted(
                s for _, s in knn_search(stack["dataset"], stack["tgm"], query, k).matches
            )
            assert actual == pytest.approx(expected)

    def test_multiset_query_against_multiset_data(self, stack):
        query = SetRecord([0, 0, 0, 1, 1, 2])
        expected = stack["brute"].range_search(query, 0.2).matches
        assert range_search(stack["dataset"], stack["tgm"], query, 0.2).matches == expected
        assert stack["invidx"].range_search(query, 0.2).matches == expected


class TestMultisetSemantics:
    def test_duplicate_counts_affect_similarity(self, stack):
        """{a,a,b} vs {a,b}: multiset Jaccard is 2/3, not 1."""
        measure = stack["tgm"].measure
        value = measure(SetRecord([0, 0, 1]), SetRecord([0, 1]))
        assert value == pytest.approx(2 / 3)

    def test_exact_duplicate_multiset_found_at_one(self, multiset_dataset, stack):
        multiset_records = [r for r in multiset_dataset.records if r.is_multiset]
        assert multiset_records, "fixture should contain multisets"
        query = multiset_records[0]
        result = range_search(multiset_dataset, stack["tgm"], query, 1.0)
        assert any(similarity == 1.0 for _, similarity in result.matches)
