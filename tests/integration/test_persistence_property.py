"""Property test: a persisted engine answers exactly like the live one.

Hypothesis drives arbitrary interleavings of open-universe insertions and
logical deletions; at any point the engine can be saved and reloaded, and
the round-tripped engine must answer knn, range, and self-join queries
*identically* to the live engine — same record indices, same float64
similarities, same order.  External tokens are strings, so the dataset
file round-trips them verbatim and record indices stay aligned.

This is the regression net for the delete/persistence bug: before manifest
format v2 an engine that had seen a single ``remove_set`` could be saved
but never loaded again (the load-time coverage check rejected the gap the
tombstone left in ``groups.json``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.core import LES3, Dataset, load_engine, save_engine
from repro.partitioning import MinTokenPartitioner

token = st.integers(min_value=0, max_value=60).map(lambda t: f"t{t}")
# Tokens the initial build has never seen: inserts with these grow the universe.
fresh_token = st.integers(min_value=0, max_value=20).map(lambda t: f"fresh{t}")
token_set = st.lists(token, min_size=1, max_size=8, unique=True)
open_token_set = st.lists(token | fresh_token, min_size=1, max_size=8, unique=True)


class RoundTripModel(RuleBasedStateMachine):
    @initialize(initial=st.lists(token_set, min_size=2, max_size=10))
    def build(self, initial):
        dataset = Dataset.from_token_lists(initial)
        self.engine = LES3.build(dataset, num_groups=3, partitioner=MinTokenPartitioner())
        self.live: set[int] = set(range(len(initial)))

    @rule(tokens=open_token_set)
    def insert(self, tokens):
        index, _ = self.engine.insert(tokens)
        self.live.add(index)

    @rule(data=st.data())
    def remove(self, data):
        if len(self.live) <= 1:
            return
        victim = data.draw(st.sampled_from(sorted(self.live)))
        self.engine.remove(victim)
        self.live.discard(victim)

    @rule(
        queries=st.lists(open_token_set, min_size=1, max_size=3),
        threshold=st.sampled_from([0.25, 0.5, 1.0]),
        k=st.integers(min_value=1, max_value=5),
    )
    def round_trip(self, queries, threshold, k):
        engine = self.engine
        with tempfile.TemporaryDirectory() as tmp:
            save_engine(engine, Path(tmp) / "index")
            loaded = load_engine(Path(tmp) / "index")
            assert loaded.removed == engine.removed
            assert loaded.verify == engine.verify
            assert len(loaded.dataset) == len(engine.dataset)
            for query in queries:
                assert loaded.range(query, threshold).matches == \
                    engine.range(query, threshold).matches
                assert loaded.knn(query, k).matches == engine.knn(query, k).matches
            assert loaded.join(threshold).pairs == engine.join(threshold).pairs
            # Saving the loaded engine round-trips again (save is stable).
            save_engine(loaded, Path(tmp) / "index2")
            reloaded = load_engine(Path(tmp) / "index2")
            assert reloaded.removed == engine.removed
            assert reloaded.join(threshold).pairs == engine.join(threshold).pairs


TestPersistenceRoundTrip = RoundTripModel.TestCase
TestPersistenceRoundTrip.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)


class TextVsBinaryModel(RuleBasedStateMachine):
    """Text load vs binary (mmap) load of one save: bit-identical answers.

    Every save now writes the dataset twice — ``dataset.txt`` (parsed
    into records by ``mode="memory"``) and ``dataset.bin`` (mapped by
    ``mode="mmap"``).  Whatever interleaving of open-universe inserts and
    logical deletes produced the engine, the two loads of the same
    directory must agree on knn, range, and join answers exactly —
    same indices, same float64 similarities, same order.
    """

    @initialize(initial=st.lists(token_set, min_size=2, max_size=10))
    def build(self, initial):
        dataset = Dataset.from_token_lists(initial)
        self.engine = LES3.build(dataset, num_groups=3, partitioner=MinTokenPartitioner())
        self.live: set[int] = set(range(len(initial)))

    @rule(tokens=open_token_set)
    def insert(self, tokens):
        index, _ = self.engine.insert(tokens)
        self.live.add(index)

    @rule(data=st.data())
    def remove(self, data):
        if len(self.live) <= 1:
            return
        victim = data.draw(st.sampled_from(sorted(self.live)))
        self.engine.remove(victim)
        self.live.discard(victim)

    @rule(
        queries=st.lists(open_token_set, min_size=1, max_size=3),
        threshold=st.sampled_from([0.25, 0.5, 1.0]),
        k=st.integers(min_value=1, max_value=5),
    )
    def text_and_binary_loads_agree(self, queries, threshold, k):
        with tempfile.TemporaryDirectory() as tmp:
            save_engine(self.engine, Path(tmp) / "index")
            from_text = load_engine(Path(tmp) / "index", mode="memory")
            from_binary = load_engine(Path(tmp) / "index", mode="mmap")
            assert from_binary.removed == from_text.removed
            assert from_binary.verify == from_text.verify
            for query in queries:
                assert from_text.knn(query, k).matches == \
                    from_binary.knn(query, k).matches
                assert from_text.range(query, threshold).matches == \
                    from_binary.range(query, threshold).matches
            assert from_text.join(threshold).pairs == from_binary.join(threshold).pairs


TestTextVsBinary = TextVsBinaryModel.TestCase
TestTextVsBinary.settings = settings(
    max_examples=15, stateful_step_count=10, deadline=None
)
