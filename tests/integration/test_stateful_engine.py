"""Model-based stateful testing of the engine's update/query lifecycle.

Hypothesis drives arbitrary interleavings of open-universe insertions,
logical deletions, and range/kNN queries; a plain-Python model (a list of
live sets) predicts every answer.  Any divergence — a missed result, a
ghost result, a wrong similarity — fails the run with the minimal
reproducing operation sequence.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core import LES3, Dataset, validate_tgm
from repro.partitioning import MinTokenPartitioner

token = st.integers(min_value=0, max_value=60).map(lambda t: f"t{t}")
token_set = st.lists(token, min_size=1, max_size=8, unique=True)


class EngineModel(RuleBasedStateMachine):
    @initialize(initial=st.lists(token_set, min_size=2, max_size=10))
    def build(self, initial):
        dataset = Dataset.from_token_lists(initial)
        self.engine = LES3.build(dataset, num_groups=3, partitioner=MinTokenPartitioner())
        # Model: record index → frozenset of external tokens (None = removed).
        self.model: dict[int, frozenset] = {
            i: frozenset(tokens) for i, tokens in enumerate(initial)
        }
        self.removed: set[int] = set()

    def _jaccard(self, query_tokens, record_tokens) -> float:
        query = frozenset(query_tokens)
        union = len(query | record_tokens)
        return len(query & record_tokens) / union if union else 0.0

    @rule(tokens=token_set)
    def insert(self, tokens):
        index, _ = self.engine.insert(tokens)
        self.model[index] = frozenset(tokens)

    @rule(data=st.data())
    def remove(self, data):
        live = sorted(set(self.model) - self.removed)
        if not live:
            return
        victim = data.draw(st.sampled_from(live))
        self.engine.remove(victim)
        self.removed.add(victim)

    @rule(tokens=token_set, threshold=st.sampled_from([0.25, 0.5, 0.75, 1.0]))
    def range_query(self, tokens, threshold):
        result = self.engine.range(tokens, threshold)
        expected = {
            index: self._jaccard(tokens, record_tokens)
            for index, record_tokens in self.model.items()
            if index not in self.removed
            and self._jaccard(tokens, record_tokens) >= threshold
        }
        actual = dict(result.matches)
        assert set(actual) == set(expected)
        for index, similarity in actual.items():
            assert similarity == pytest.approx(expected[index])

    @rule(tokens=token_set, k=st.integers(min_value=1, max_value=5))
    def knn_query(self, tokens, k):
        result = self.engine.knn(tokens, k)
        live = [
            self._jaccard(tokens, record_tokens)
            for index, record_tokens in self.model.items()
            if index not in self.removed
        ]
        expected = sorted(live, reverse=True)[:k]
        actual = sorted((s for _, s in result.matches), reverse=True)
        assert actual == pytest.approx(expected)
        assert all(index not in self.removed for index, _ in result.matches)

    @invariant()
    def index_is_sound(self):
        if not hasattr(self, "engine"):
            return
        report = validate_tgm(self.engine.dataset, self.engine.tgm, removed=self.removed)
        assert report.ok, report.summary()


TestEngineStateful = EngineModel.TestCase
TestEngineStateful.settings = settings(max_examples=25, stateful_step_count=20, deadline=None)
