"""Stateful property test of the LSM-style write path (delta + compaction).

Hypothesis drives arbitrary interleavings of open-universe inserts,
logical deletes, knn/range queries, saves, reloads (text and mmap), and
compactions — against a brute-force dict model.  The invariants:

* Every query answer is *exactly* the brute-force answer — same record
  indices, same float64 similarities, same canonical order — no matter
  how many delta ops are pending, which load mode produced the engine,
  or how many compactions have folded the log.
* Tombstoned records never resurface: not in any query answer, and
  still tombstoned after a compaction rewrote the base generation.
* A reload (which replays ``delta.log`` over the base) reproduces the
  live engine's state exactly; a compaction leaves an empty delta.

The brute-force similarity uses the same integer-overlap formula as
:meth:`repro.core.similarity.Jaccard.from_overlap`, so float64 results
are bit-identical by construction, not approximately close.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.core import LES3, Dataset
from repro.core.delta import DELTA_LOG
from repro.core.persistence import _load_engine, save_engine
from repro.distributed.persistence import _load_sharded, save_sharded
from repro.distributed.sharded import ShardedLES3
from repro.maintenance import compact_index
from repro.partitioning import MinTokenPartitioner

token = st.integers(min_value=0, max_value=60).map(lambda t: f"t{t}")
fresh_token = st.integers(min_value=0, max_value=20).map(lambda t: f"fresh{t}")
token_set = st.lists(token, min_size=1, max_size=8, unique=True)
open_token_set = st.lists(token | fresh_token, min_size=1, max_size=8, unique=True)


def brute_similarities(model: dict[int, frozenset], query) -> dict[int, float]:
    """Jaccard against every live record, same arithmetic as the engine."""
    query = frozenset(query)
    sims = {}
    for index, tokens in model.items():
        shared = len(query & tokens)
        union = len(query) + len(tokens) - shared
        sims[index] = shared / union if union > 0 else 0.0
    return sims


def brute_knn(model, query, k):
    ranked = sorted(brute_similarities(model, query).items(), key=lambda m: (-m[1], m[0]))
    return ranked[:k]


def brute_range(model, query, threshold):
    sims = brute_similarities(model, query)
    kept = [(i, s) for i, s in sims.items() if s >= threshold]
    return sorted(kept, key=lambda m: (-m[1], m[0]))


class _DeltaMachineBase(RuleBasedStateMachine):
    """Shared rules; subclasses supply build/save/load/compact plumbing."""

    def __init__(self):
        super().__init__()
        self.scratch = Path(tempfile.mkdtemp())
        self.directory = self.scratch / "index"
        self.saved = False

    def teardown(self):
        shutil.rmtree(self.scratch, ignore_errors=True)

    def _init_model(self, initial):
        self.model = {i: frozenset(tokens) for i, tokens in enumerate(initial)}
        self.tombstones: set[int] = set()

    # -- mutations ---------------------------------------------------------

    @rule(tokens=open_token_set)
    def insert(self, tokens):
        index = self.engine.insert(tokens)[0]
        assert index not in self.model, "insert reused a live index"
        assert index not in self.tombstones, "insert resurrected a tombstone"
        self.model[index] = frozenset(tokens)

    @rule(data=st.data())
    def remove(self, data):
        if len(self.model) <= 1:
            return
        victim = data.draw(st.sampled_from(sorted(self.model)))
        self.engine.remove(victim)
        del self.model[victim]
        self.tombstones.add(victim)

    # -- queries vs the brute-force model ----------------------------------

    @rule(query=open_token_set, k=st.integers(min_value=1, max_value=6))
    def knn_matches_brute_force(self, query, k):
        got = self.engine.knn(query, k).matches
        assert got == brute_knn(self.model, query, k)
        assert self.tombstones.isdisjoint(index for index, _ in got)

    @rule(query=open_token_set, threshold=st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    def range_matches_brute_force(self, query, threshold):
        got = self.engine.range(query, threshold).matches
        assert got == brute_range(self.model, query, threshold)
        assert self.tombstones.isdisjoint(index for index, _ in got)

    # -- persistence lifecycle ---------------------------------------------

    @rule()
    def save(self):
        self._save()
        self.saved = True
        assert not (self.directory / DELTA_LOG).exists(), (
            "a fresh save must start with an empty delta (save folds)"
        )

    @rule(mode=st.sampled_from(["memory", "mmap"]))
    def reload(self, mode):
        if not self.saved:
            return
        self.engine = self._load(mode)
        assert set(self._removed()) == self.tombstones

    @rule()
    def compact(self):
        if not self.saved:
            return
        stats = compact_index(self.directory)
        assert not (self.directory / DELTA_LOG).exists()
        assert stats["num_tombstones"] == len(self.tombstones)
        self.engine = self._load("memory")
        assert self.engine._delta.num_ops == 0
        # Tombstones never resurface after the base is rewritten.
        assert set(self._removed()) == self.tombstones


class SingleEngineDeltaMachine(_DeltaMachineBase):
    @initialize(initial=st.lists(token_set, min_size=2, max_size=10))
    def build(self, initial):
        dataset = Dataset.from_token_lists(initial)
        self.engine = LES3.build(
            dataset, num_groups=3, partitioner=MinTokenPartitioner()
        )
        self._init_model(initial)

    def _save(self):
        save_engine(self.engine, self.directory)

    def _load(self, mode):
        return _load_engine(self.directory, mode=mode)

    def _removed(self):
        return self.engine.removed


class ShardedDeltaMachine(_DeltaMachineBase):
    @initialize(initial=st.lists(token_set, min_size=2, max_size=10))
    def build(self, initial):
        dataset = Dataset.from_token_lists(initial)
        self.engine = ShardedLES3.build(
            dataset, 2, num_groups=4,
            partitioner_factory=lambda shard_id: MinTokenPartitioner(),
        )
        self._init_model(initial)

    def _save(self):
        save_sharded(self.engine, self.directory)

    def _load(self, mode):
        return _load_sharded(self.directory, mode=mode)

    def _removed(self):
        return self.engine.removed


TestSingleEngineDelta = SingleEngineDeltaMachine.TestCase
TestSingleEngineDelta.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)

TestShardedDelta = ShardedDeltaMachine.TestCase
TestShardedDelta.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)
