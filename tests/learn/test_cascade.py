"""Tests for the L2P cascade framework."""

import random

import pytest

from repro.core import Dataset
from repro.learn import L2PPartitioner
from repro.partitioning import RandomPartitioner, gpo


def planted_two_clusters(per_cluster=60, seed=0):
    rng = random.Random(seed)
    lists = []
    for cluster in range(2):
        base = cluster * 60
        for _ in range(per_cluster):
            lists.append([str(t) for t in rng.sample(range(base, base + 40), 8)])
    return Dataset.from_token_lists(lists)


def make_l2p(**overrides):
    defaults = dict(
        pairs_per_model=1500, epochs=3, lr=0.02, initial_groups=1, min_group_size=4, seed=0
    )
    defaults.update(overrides)
    return L2PPartitioner(**defaults)


class TestCascadeMechanics:
    def test_partition_covers_database(self):
        dataset = planted_two_clusters()
        partition = make_l2p().partition(dataset, 8)
        assert partition.covers(len(dataset))
        assert partition.num_groups <= 8

    def test_level_partitions_are_nested_and_doubling(self):
        dataset = planted_two_clusters()
        l2p = make_l2p()
        l2p.partition(dataset, 8)
        counts = [p.num_groups for p in l2p.level_partitions_]
        assert counts == sorted(counts)
        assert counts[-1] <= 8
        # Nesting: every fine group within one coarse group.
        coarse, fine = l2p.level_partitions_[-2], l2p.level_partitions_[-1]
        for group in fine.groups:
            parents = {coarse.group_of(i) for i in group}
            assert len(parents) == 1

    def test_min_group_size_respected(self):
        dataset = planted_two_clusters(per_cluster=30)
        l2p = make_l2p(min_group_size=25)
        partition = l2p.partition(dataset, 64)
        # A group below 25 members is never split, so none can fall under
        # 25/2 via splitting (only via the split of a >= 25 group).
        assert partition.num_groups < 64
        assert all(size >= 1 for size in partition.group_sizes())

    def test_initial_groups_capped_by_target(self):
        dataset = planted_two_clusters(per_cluster=30)
        l2p = make_l2p(initial_groups=128)
        partition = l2p.partition(dataset, 4)
        assert partition.num_groups <= 4

    def test_stats_record_models_and_pairs(self):
        dataset = planted_two_clusters()
        l2p = make_l2p()
        l2p.partition(dataset, 4)
        assert l2p.stats_.models_trained >= 3  # 1 root + 2 children
        assert l2p.stats_.pairs_sampled > 0
        assert all(len(h) == 3 for h in l2p.stats_.loss_histories)

    def test_empty_dataset(self):
        partition = make_l2p().partition(Dataset(), 4)
        assert partition.num_groups == 0

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            make_l2p().partition(planted_two_clusters(10), 0)


class TestCascadeQuality:
    def test_learns_planted_bisection(self):
        dataset = planted_two_clusters()
        partition = make_l2p().partition(dataset, 2)
        assert partition.num_groups == 2
        # Majority purity on both sides.
        for group in partition.groups:
            first_cluster = sum(1 for i in group if i < 60) / len(group)
            assert max(first_cluster, 1 - first_cluster) > 0.8

    def test_beats_random_partitioning_gpo(self):
        dataset = planted_two_clusters()
        l2p_gpo = gpo(dataset, make_l2p().partition(dataset, 4))
        random_gpo = gpo(dataset, RandomPartitioner(seed=1).partition(dataset, 4))
        assert l2p_gpo < random_gpo

    def test_loss_decreases_during_training(self):
        dataset = planted_two_clusters()
        l2p = make_l2p(epochs=4)
        l2p.partition(dataset, 2)
        first_model_history = l2p.stats_.loss_histories[0]
        assert first_model_history[-1] <= first_model_history[0]
