"""Tests for the numpy NN substrate: numerical gradients, Adam, MLP."""

import numpy as np
import pytest

from repro.learn.nn import MLP, Adam, Linear, Sigmoid, build_l2p_network


def numerical_gradient(f, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = f()
        flat[i] = original - eps
        lower = f()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape_and_value(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng)
        x = rng.standard_normal((4, 3))
        out = layer.forward(x)
        np.testing.assert_allclose(out, x @ layer.weight + layer.bias)

    def test_backward_matches_numerical_gradient(self):
        rng = np.random.default_rng(1)
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((5, 4))
        upstream = rng.standard_normal((5, 3))

        def loss():
            return float((layer.forward(x) * upstream).sum())

        loss()  # populate cache
        layer.zero_grad()
        grad_input = layer.backward(upstream)
        np.testing.assert_allclose(
            layer.grad_weight, numerical_gradient(loss, layer.weight), atol=1e-5
        )
        np.testing.assert_allclose(
            layer.grad_bias, numerical_gradient(loss, layer.bias), atol=1e-5
        )
        # Input gradient: d(sum(xW+b)*u)/dx = u @ W.T
        np.testing.assert_allclose(grad_input, upstream @ layer.weight.T)

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestSigmoid:
    def test_range_and_stability(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-1000.0, -1.0, 0.0, 1.0, 1000.0]]))
        # Extreme inputs saturate to exactly 0/1 in float64 without
        # overflowing or producing NaNs; moderate inputs stay interior.
        assert np.isfinite(out).all()
        assert ((out >= 0) & (out <= 1)).all()
        assert 0.0 < out[0, 1] < 0.5 < out[0, 3] < 1.0
        assert out[0, 2] == pytest.approx(0.5)

    def test_backward_matches_analytic(self):
        layer = Sigmoid()
        x = np.linspace(-3, 3, 7).reshape(1, -1)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out * (1 - out))


class TestMLP:
    def test_l2p_architecture(self):
        network = build_l2p_network(14, np.random.default_rng(0))
        # input→8, sigmoid, 8→8, sigmoid, 8→1, sigmoid.
        assert len(network.layers) == 6
        assert network.num_parameters() == (14 * 8 + 8) + (8 * 8 + 8) + (8 + 1)

    def test_forward_output_in_unit_interval(self):
        network = build_l2p_network(6, np.random.default_rng(0))
        out = network.forward(np.random.default_rng(1).standard_normal((10, 6)))
        assert out.shape == (10, 1)
        assert ((out > 0) & (out < 1)).all()

    def test_end_to_end_gradient_check(self):
        rng = np.random.default_rng(2)
        network = MLP([3, 4, 1], rng)
        x = rng.standard_normal((6, 3))
        target = rng.standard_normal((6, 1))

        def loss():
            diff = network.forward(x) - target
            return float((diff**2).sum() / 2)

        loss()
        network.zero_grad()
        network.backward(network.forward(x) - target)
        for param, grad in zip(network.parameters(), network.gradients()):
            np.testing.assert_allclose(grad, numerical_gradient(loss, param), atol=1e-5)

    def test_too_few_widths_rejected(self):
        with pytest.raises(ValueError):
            MLP([5], np.random.default_rng(0))


class TestAdam:
    def test_minimises_quadratic(self):
        param = np.array([5.0, -3.0])
        grad = np.zeros_like(param)
        optimizer = Adam([param], [grad], lr=0.1)
        for _ in range(500):
            grad[:] = param  # gradient of ||p||²/2
            optimizer.step()
        assert np.abs(param).max() < 1e-2

    def test_step_clears_gradients(self):
        param = np.ones(2)
        grad = np.ones(2)
        Adam([param], [grad]).step()
        assert (grad == 0).all()

    def test_misaligned_lists_rejected(self):
        with pytest.raises(ValueError):
            Adam([np.ones(2)], [])
