"""Tests for parallel cascade training (Section 7.2's future-work feature)."""

import pytest

from repro.datasets import zipf_dataset
from repro.learn import L2PPartitioner


@pytest.fixture(scope="module")
def dataset():
    return zipf_dataset(300, 400, (2, 8), seed=70)


def make(workers):
    return L2PPartitioner(
        pairs_per_model=500,
        epochs=2,
        initial_groups=4,
        min_group_size=8,
        workers=workers,
        seed=0,
    )


class TestParallelTraining:
    def test_same_partition_any_worker_count(self, dataset):
        serial = make(1).partition(dataset, 16)
        parallel = make(4).partition(dataset, 16)
        assert serial.groups == parallel.groups

    def test_stats_complete_in_parallel(self, dataset):
        l2p = make(4)
        l2p.partition(dataset, 16)
        serial = make(1)
        serial.partition(dataset, 16)
        assert l2p.stats_.models_trained == serial.stats_.models_trained
        assert l2p.stats_.pairs_sampled == serial.stats_.pairs_sampled

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            make(0)

    def test_level_partitions_identical(self, dataset):
        serial = make(1)
        serial.partition(dataset, 16)
        parallel = make(3)
        parallel.partition(dataset, 16)
        for a, b in zip(serial.level_partitions_, parallel.level_partitions_):
            assert a.groups == b.groups
