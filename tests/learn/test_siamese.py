"""Tests for the Siamese network and the Equation 15/18 losses."""

import numpy as np
import pytest

from repro.learn import SiameseNetwork, hard_pair_loss, surrogate_pair_loss


class TestLossFunctions:
    def test_hard_loss_counts_same_side_only(self):
        out_x = np.array([0.2, 0.7, 0.3])
        out_y = np.array([0.3, 0.9, 0.8])
        distance = np.array([0.5, 0.4, 1.0])
        np.testing.assert_allclose(hard_pair_loss(out_x, out_y, distance), [0.5, 0.4, 0.0])

    def test_surrogate_weights_by_output_gap(self):
        out_x = np.array([0.2, 0.45])
        out_y = np.array([0.3, 0.05])
        distance = np.array([1.0, 1.0])
        expected = np.array([(0.5 - 0.1) * 1.0, (0.5 - 0.4) * 1.0])
        np.testing.assert_allclose(surrogate_pair_loss(out_x, out_y, distance), expected)

    def test_surrogate_zero_across_boundary(self):
        value = surrogate_pair_loss(np.array([0.4]), np.array([0.6]), np.array([1.0]))
        assert value[0] == 0.0

    def test_same_global_optimum(self):
        """Both losses are zero exactly when the pair is split."""
        for out_x, out_y in [(0.1, 0.9), (0.49, 0.51)]:
            assert hard_pair_loss(np.array([out_x]), np.array([out_y]), np.array([1.0]))[0] == 0
            assert (
                surrogate_pair_loss(np.array([out_x]), np.array([out_y]), np.array([1.0]))[0]
                == 0
            )

    def test_balance_argument_of_section_5_1(self):
        """With equal pairwise distance d, balanced split minimises Eq 15.

        N1² + N2² ≥ N²/2 with equality iff N1 = N2 (the paper's argument).
        """
        d = 0.7
        n = 10

        def total_loss(n1):
            n2 = n - n1
            return d / 2 * (n1 * (n1 - 1) + n2 * (n2 - 1))

        losses = [total_loss(n1) for n1 in range(n + 1)]
        assert min(losses) == total_loss(n // 2)


class TestSiameseNetwork:
    def test_outputs_in_unit_interval(self):
        network = SiameseNetwork(input_dim=4, seed=0)
        out = network.outputs(np.random.default_rng(0).standard_normal((20, 4)))
        assert ((out > 0) & (out < 1)).all()

    def test_assign_thresholds_at_half(self):
        network = SiameseNetwork(input_dim=4, seed=0)
        reps = np.random.default_rng(1).standard_normal((10, 4))
        np.testing.assert_array_equal(network.assign(reps), network.outputs(reps) >= 0.5)

    def test_training_separates_two_blobs(self):
        """Two well-separated blobs with cross-distance 1 should split."""
        rng = np.random.default_rng(3)
        blob_a = rng.normal(loc=-2.0, size=(30, 4))
        blob_b = rng.normal(loc=2.0, size=(30, 4))
        reps = np.vstack([blob_a, blob_b])
        pair_count = 3000
        ix = rng.integers(0, 60, pair_count)
        iy = rng.integers(0, 60, pair_count)
        same_blob = (ix < 30) == (iy < 30)
        similarities = np.where(same_blob, 0.9, 0.0)
        network = SiameseNetwork(input_dim=4, seed=0, lr=0.05)
        history = network.train(reps[ix], reps[iy], similarities, epochs=5)
        assert history[-1] < history[0]
        sides = network.assign(reps)
        # Each blob should be (almost) pure on its side.
        purity_a = max(sides[:30].mean(), 1 - sides[:30].mean())
        purity_b = max(sides[30:].mean(), 1 - sides[30:].mean())
        assert purity_a > 0.85 and purity_b > 0.85

    def test_surrogate_learns_hard_does_not(self):
        """Equation 15's zero gradient cannot move the weights (the ablation)."""
        rng = np.random.default_rng(4)
        reps = rng.standard_normal((40, 4))
        ix = rng.integers(0, 40, 500)
        iy = rng.integers(0, 40, 500)
        similarities = rng.random(500)

        hard_net = SiameseNetwork(input_dim=4, seed=7)
        initial = [p.copy() for p in hard_net.network.parameters()]
        hard_net.train(reps[ix], reps[iy], similarities, epochs=2, loss="hard")
        for before, after in zip(initial, hard_net.network.parameters()):
            np.testing.assert_array_equal(before, after)

        surrogate_net = SiameseNetwork(input_dim=4, seed=7)
        surrogate_net.train(reps[ix], reps[iy], similarities, epochs=2, loss="surrogate")
        moved = any(
            not np.array_equal(before, after)
            for before, after in zip(initial, surrogate_net.network.parameters())
        )
        assert moved

    def test_invalid_loss_name(self):
        network = SiameseNetwork(input_dim=2)
        with pytest.raises(ValueError):
            network.train(np.zeros((1, 2)), np.zeros((1, 2)), np.zeros(1), loss="nope")

    def test_misaligned_pairs_rejected(self):
        network = SiameseNetwork(input_dim=2)
        with pytest.raises(ValueError):
            network.train(np.zeros((2, 2)), np.zeros((3, 2)), np.zeros(2))
