"""Tests for Partition bookkeeping."""

import pytest

from repro.partitioning import Partition


class TestConstruction:
    def test_groups_and_assignments(self):
        partition = Partition([[0, 2], [1, 3]])
        assert partition.num_groups == 2
        assert partition.group_of(2) == 0
        assert partition.group_of(3) == 1

    def test_empty_groups_dropped(self):
        partition = Partition([[0], [], [1]])
        assert partition.num_groups == 2

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(ValueError, match="more than one group"):
            Partition([[0, 1], [1, 2]])

    def test_from_assignments(self):
        partition = Partition.from_assignments([1, 0, 1, 5])
        assert partition.num_groups == 3
        assert partition.group_of(0) == partition.group_of(2)
        assert partition.group_of(3) != partition.group_of(0)

    def test_iteration_and_indexing(self):
        partition = Partition([[0], [1, 2]])
        assert list(partition) == [[0], [1, 2]]
        assert partition[1] == [1, 2]
        assert len(partition) == 2


class TestCoverage:
    def test_covers(self):
        assert Partition([[0, 1], [2]]).covers(3)
        assert not Partition([[0, 1]]).covers(3)
        assert not Partition([[0, 4]]).covers(3)

    def test_group_sizes(self):
        assert Partition([[0, 1, 2], [3]]).group_sizes() == [3, 1]

    def test_num_records(self):
        assert Partition([[0, 1], [2]]).num_records() == 3


class TestAssign:
    def test_assign_new_record(self):
        partition = Partition([[0], [1]])
        partition.assign(2, 0)
        assert partition.group_of(2) == 0
        assert partition.groups[0] == [0, 2]

    def test_assign_existing_rejected(self):
        partition = Partition([[0]])
        with pytest.raises(ValueError):
            partition.assign(0, 0)

    def test_assign_bad_group_rejected(self):
        partition = Partition([[0]])
        with pytest.raises(IndexError):
            partition.assign(1, 5)
