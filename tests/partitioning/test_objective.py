"""Tests for the Section 4 objectives: U, F, GPO, expected PE, balance."""

import pytest

from repro.core import Dataset, get_measure
from repro.partitioning import (
    Partition,
    balance,
    expected_pruning_efficiency,
    f_value,
    gpo,
    gpo_sampled,
    group_phi,
    summed_vocabulary,
)


@pytest.fixture(scope="module")
def clustered_dataset():
    """Two token-disjoint clusters of three sets each."""
    return Dataset.from_token_lists(
        [
            ["a", "b"],
            ["b", "c"],
            ["a", "c"],
            ["x", "y"],
            ["y", "z"],
            ["x", "z"],
        ]
    )


GOOD = Partition([[0, 1, 2], [3, 4, 5]])
BAD = Partition([[0, 3, 4], [1, 2, 5]])
ALL_IN_ONE = Partition([[0, 1, 2, 3, 4, 5]])


class TestSummedVocabulary:
    def test_coherent_partition_has_smaller_u(self, clustered_dataset):
        assert summed_vocabulary(clustered_dataset, GOOD) < summed_vocabulary(
            clustered_dataset, BAD
        )

    def test_all_in_one_equals_universe(self, clustered_dataset):
        assert summed_vocabulary(clustered_dataset, ALL_IN_ONE) == len(
            clustered_dataset.universe
        )


class TestGPO:
    def test_coherent_partition_has_smaller_gpo(self, clustered_dataset):
        assert gpo(clustered_dataset, GOOD) < gpo(clustered_dataset, BAD)

    def test_all_in_one_is_maximal(self, clustered_dataset):
        """Section 4.2: one big group gives the maximal possible GPO."""
        maximal = gpo(clustered_dataset, ALL_IN_ONE)
        assert gpo(clustered_dataset, GOOD) <= maximal
        assert gpo(clustered_dataset, BAD) <= maximal

    def test_singletons_are_zero(self, clustered_dataset):
        singletons = Partition([[i] for i in range(6)])
        assert gpo(clustered_dataset, singletons) == 0.0

    def test_group_phi_counts_unordered_pairs(self, clustered_dataset):
        measure = get_measure("jaccard")
        phi = group_phi(clustered_dataset, [0, 1, 2], measure)
        # Three pairs, each with Jaccard 1/3 → distance 2/3.
        assert phi == pytest.approx(3 * (2 / 3))

    def test_sampled_gpo_exact_for_small_groups(self, clustered_dataset):
        assert gpo_sampled(clustered_dataset, GOOD, sample_size=10) == pytest.approx(
            gpo(clustered_dataset, GOOD)
        )

    def test_sampled_gpo_close_on_larger_data(self, zipf_small):
        from repro.partitioning import RandomPartitioner

        partition = RandomPartitioner(seed=0).partition(zipf_small, 5)
        exact = gpo(zipf_small, partition)
        estimate = gpo_sampled(zipf_small, partition, sample_size=40, seed=1)
        assert estimate == pytest.approx(exact, rel=0.35)


class TestFValueAndPE:
    def test_coherent_partition_has_smaller_f(self, clustered_dataset):
        assert f_value(clustered_dataset, GOOD) < f_value(clustered_dataset, BAD)

    def test_expected_pe_prefers_coherent_partition(self, clustered_dataset):
        assert expected_pruning_efficiency(
            clustered_dataset, GOOD
        ) > expected_pruning_efficiency(clustered_dataset, BAD)

    def test_expected_pe_in_unit_interval(self, clustered_dataset):
        value = expected_pruning_efficiency(clustered_dataset, GOOD)
        assert 0.0 <= value <= 1.0

    def test_query_sampling(self, zipf_small):
        from repro.partitioning import MinTokenPartitioner

        partition = MinTokenPartitioner().partition(zipf_small, 8)
        full = expected_pruning_efficiency(zipf_small, partition)
        sampled = expected_pruning_efficiency(zipf_small, partition, query_sample=60, seed=2)
        assert sampled == pytest.approx(full, abs=0.1)


class TestILPFormulation:
    def test_equation_14_equals_twice_gpo(self, clustered_dataset):
        """Theorem 4.4's reduction: the masked ordered-pair sum is 2·GPO."""
        from repro.partitioning import ilp_objective

        for partition in (GOOD, BAD, ALL_IN_ONE):
            assert ilp_objective(clustered_dataset, partition) == pytest.approx(
                2.0 * gpo(clustered_dataset, partition)
            )

    def test_constraint_every_set_in_one_group(self, clustered_dataset):
        """The e_n · Aᵀ = e_|D| constraint is exactly Partition coverage."""
        assert GOOD.covers(len(clustered_dataset))
        with pytest.raises(ValueError):
            Partition([[0, 1], [1, 2]])  # a set in two groups violates it


class TestBalance:
    def test_perfectly_balanced(self):
        assert balance(Partition([[0, 1], [2, 3]])) == 1.0

    def test_skew_grows_ratio(self):
        assert balance(Partition([[0, 1, 2], [3]])) == pytest.approx(1.5)

    def test_theorem_4_2_balanced_beats_skewed_on_uniform_data(self):
        """Theorem 4.2: on uniform data, balanced groups minimise F.

        The theorem's regime requires unsaturated group vocabularies
        (|G|·avg set size well below |T|); with a small universe every
        group covers almost all tokens and the effect washes out, so the
        test uses a wide universe.
        """
        from repro.datasets import uniform_dataset

        dataset = uniform_dataset(200, 3000, (3, 6), seed=7)
        indices = list(range(len(dataset)))
        half = len(indices) // 2
        balanced = Partition([indices[:half], indices[half:]])
        skewed = Partition([indices[:10], indices[10:]])
        assert f_value(dataset, balanced) < f_value(dataset, skewed)
