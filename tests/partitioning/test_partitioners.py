"""Tests for the Section 4.3 partitioners and the trivial ones."""

import pytest

from repro.core import Dataset
from repro.datasets import zipf_dataset
from repro.partitioning import (
    MinTokenPartitioner,
    ParAPartitioner,
    ParCPartitioner,
    ParDPartitioner,
    ParGPartitioner,
    RandomPartitioner,
    chunk_evenly,
    gpo,
)


@pytest.fixture(scope="module")
def clustered():
    """Four planted clusters of 15 sets, token-disjoint."""
    import random

    rng = random.Random(3)
    lists = []
    for cluster in range(4):
        base = cluster * 50
        for _ in range(15):
            lists.append([str(t) for t in rng.sample(range(base, base + 30), 6)])
    return Dataset.from_token_lists(lists)


ALL_PARTITIONERS = [
    RandomPartitioner(seed=0),
    MinTokenPartitioner(),
    ParCPartitioner(seed=0, max_passes=3),
    ParDPartitioner(seed=0),
    ParAPartitioner(seed=0),
    ParGPartitioner(k=3, seed=0),
]


class TestChunkEvenly:
    def test_sizes_differ_by_at_most_one(self):
        chunks = chunk_evenly(list(range(10)), 3)
        sizes = sorted(len(c) for c in chunks)
        assert sizes == [3, 3, 4]

    def test_fewer_items_than_groups(self):
        chunks = chunk_evenly([1, 2], 5)
        assert len(chunks) == 2

    def test_invalid_group_count(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


@pytest.mark.parametrize("partitioner", ALL_PARTITIONERS, ids=lambda p: type(p).__name__)
class TestContracts:
    def test_covers_database_disjointly(self, clustered, partitioner):
        partition = partitioner.partition(clustered, 4)
        assert partition.covers(len(clustered))

    def test_group_count_at_most_target(self, clustered, partitioner):
        partition = partitioner.partition(clustered, 4)
        assert 1 <= partition.num_groups <= 4

    def test_single_group(self, clustered, partitioner):
        partition = partitioner.partition(clustered, 1)
        assert partition.num_groups == 1
        assert partition.covers(len(clustered))


class TestQuality:
    @pytest.mark.parametrize(
        "partitioner",
        [
            ParDPartitioner(seed=0, sample_size=32),
            ParAPartitioner(seed=0, sample_size=16, candidate_sample=None),
            ParGPartitioner(k=3, seed=0),
        ],
        ids=lambda p: type(p).__name__,
    )
    def test_gpo_beats_random(self, clustered, partitioner):
        """Seed-growing heuristics should beat a random partition."""
        random_gpo = gpo(clustered, RandomPartitioner(seed=1).partition(clustered, 4))
        heuristic_gpo = gpo(clustered, partitioner.partition(clustered, 4))
        assert heuristic_gpo < random_gpo

    def test_par_c_never_worse_than_its_initialisation(self, clustered):
        """PAR-C only performs GPO-decreasing moves, so it cannot lose to
        its own random starting point.  (It often *stays* there: single-set
        moves that must temporarily increase GPO are never taken — exactly
        the local-optimum pathology Section 7.4 attributes to PAR-C.)
        """
        start_gpo = gpo(clustered, RandomPartitioner(seed=0).partition(clustered, 4))
        par_c = ParCPartitioner(seed=0, max_passes=5, sample_size=64)
        assert gpo(clustered, par_c.partition(clustered, 4)) <= start_gpo + 1e-9

    def test_min_token_groups_consecutive(self):
        dataset = zipf_dataset(60, 50, (2, 5), seed=2)
        partition = MinTokenPartitioner().partition(dataset, 6)
        min_tokens = [
            [dataset.records[i].min_token() for i in group] for group in partition.groups
        ]
        flattened = [t for group in min_tokens for t in sorted(group)]
        # Sorting only within groups must already give a globally sorted list.
        assert flattened == sorted(flattened)

    def test_par_g_range_mode(self, clustered):
        partition = ParGPartitioner(k=None, threshold=0.3, seed=0).partition(clustered, 4)
        assert partition.covers(len(clustered))

    def test_par_g_rejects_ambiguous_workload(self):
        with pytest.raises(ValueError):
            ParGPartitioner(k=5, threshold=0.5)
        with pytest.raises(ValueError):
            ParGPartitioner(k=None, threshold=None)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomPartitioner(seed=7),
            lambda: ParCPartitioner(seed=7),
            lambda: ParDPartitioner(seed=7),
            lambda: ParAPartitioner(seed=7),
        ],
        ids=["random", "par-c", "par-d", "par-a"],
    )
    def test_same_seed_same_partition(self, clustered, factory):
        first = factory().partition(clustered, 4)
        second = factory().partition(clustered, 4)
        assert first.groups == second.groups
