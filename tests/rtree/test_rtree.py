"""Tests for the R-tree substrate: structure, MBRs, exactness of traversal."""

import numpy as np
import pytest

from repro.rtree import RTree


def euclidean_bound(query):
    """Bound = negative min distance from query to rectangle (for kNN tests)."""

    def bound(mbr_min, mbr_max):
        clamped = np.clip(query, mbr_min, mbr_max)
        return -float(np.linalg.norm(query - clamped))

    return bound


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 100, size=(300, 3))


@pytest.fixture(scope="module")
def tree(points):
    return RTree(leaf_capacity=16, fanout=4).bulk_load(points)


class TestStructure:
    def test_mbrs_contain_children(self, tree):
        def check(node):
            if node.is_leaf:
                vectors = np.stack([v for _, v in node.entries])
                assert (vectors >= node.mbr_min - 1e-12).all()
                assert (vectors <= node.mbr_max + 1e-12).all()
            else:
                for child in node.children:
                    assert (child.mbr_min >= node.mbr_min - 1e-12).all()
                    assert (child.mbr_max <= node.mbr_max + 1e-12).all()
                    check(child)

        check(tree.root)

    def test_all_entries_present(self, tree, points):
        collected = []

        def walk(node):
            if node.is_leaf:
                collected.extend(index for index, _ in node.entries)
            else:
                for child in node.children:
                    walk(child)

        walk(tree.root)
        assert sorted(collected) == list(range(len(points)))

    def test_leaf_capacity_respected(self, tree):
        def walk(node):
            if node.is_leaf:
                assert len(node.entries) <= 16
            else:
                assert len(node.children) <= 4
                for child in node.children:
                    walk(child)

        walk(tree.root)

    def test_node_count_and_depth(self, tree):
        assert tree.num_nodes() >= np.ceil(300 / 16)
        assert tree.root.depth() >= 2

    def test_byte_size_positive(self, tree):
        assert tree.byte_size() > 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RTree(leaf_capacity=1)
        with pytest.raises(ValueError):
            RTree().bulk_load(np.empty((0, 2)))


class TestRangeQuery:
    def test_matches_linear_scan(self, tree, points):
        query = np.array([50.0, 50.0, 50.0])
        radius = 20.0
        bound = euclidean_bound(query)
        entries, _ = tree.range_query(bound, -radius)
        candidate_ids = {index for index, _ in entries}
        expected = {
            i for i, p in enumerate(points) if np.linalg.norm(p - query) <= radius
        }
        # Range query returns a superset (bound is on rectangles); it must
        # never miss a true answer.
        assert expected <= candidate_ids

    def test_empty_tree(self):
        tree = RTree()
        assert tree.range_query(lambda a, b: 1.0, 0.5) == ([], 0)


class TestKnnTraverse:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_linear_scan(self, tree, points, k):
        query = np.array([30.0, 60.0, 10.0])
        bound = euclidean_bound(query)

        def score(index, vector):
            return -float(np.linalg.norm(points[index] - query))

        matches, nodes_visited, _ = tree.knn_traverse(bound, score, k)
        exact = sorted(
            ((-float(np.linalg.norm(p - query)), i) for i, p in enumerate(points)),
            reverse=True,
        )[:k]
        assert [s for _, s in matches] == pytest.approx([s for s, _ in exact])
        assert nodes_visited <= tree.num_nodes()

    def test_pruning_happens(self, tree):
        query = np.array([1.0, 1.0, 1.0])
        bound = euclidean_bound(query)
        _, nodes_visited, entries_scored = tree.knn_traverse(
            bound, lambda i, v: -float(np.linalg.norm(v - query)), 1
        )
        assert nodes_visited < tree.num_nodes()
        assert entries_scored < 300

    def test_k_zero(self, tree):
        assert tree.knn_traverse(lambda a, b: 1.0, lambda i, v: 1.0, 0) == ([], 0, 0)
