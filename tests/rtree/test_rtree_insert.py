"""Tests for dynamic R-tree insertion."""

import numpy as np
import pytest

from repro.rtree import RTree


def euclidean_bound(query):
    def bound(mbr_min, mbr_max):
        clamped = np.clip(query, mbr_min, mbr_max)
        return -float(np.linalg.norm(query - clamped))

    return bound


def check_invariants(tree):
    """MBR containment and capacity hold everywhere after inserts."""

    def walk(node):
        if node.is_leaf:
            assert node.entries
            assert len(node.entries) <= tree.leaf_capacity
            vectors = np.stack([v for _, v in node.entries])
            assert (vectors >= node.mbr_min - 1e-9).all()
            assert (vectors <= node.mbr_max + 1e-9).all()
        else:
            assert len(node.children) <= tree.fanout
            for child in node.children:
                assert (child.mbr_min >= node.mbr_min - 1e-9).all()
                assert (child.mbr_max <= node.mbr_max + 1e-9).all()
                walk(child)

    walk(tree.root)


class TestInsert:
    def test_insert_into_empty_tree(self):
        tree = RTree(leaf_capacity=4, fanout=3)
        tree.insert(0, np.array([1.0, 2.0]))
        assert tree.num_nodes() == 1
        check_invariants(tree)

    def test_incremental_build_keeps_invariants(self):
        rng = np.random.default_rng(7)
        tree = RTree(leaf_capacity=4, fanout=3)
        points = rng.uniform(0, 50, size=(120, 2))
        for i, point in enumerate(points):
            tree.insert(i, point)
        check_invariants(tree)
        # Every entry is retrievable.
        entries, _ = tree.range_query(lambda a, b: 1.0, 0.5)
        assert sorted(index for index, _ in entries) == list(range(120))

    def test_knn_exact_after_inserts(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0, 100, size=(80, 3))
        tree = RTree(leaf_capacity=8, fanout=4)
        for i, point in enumerate(points):
            tree.insert(i, point)
        query = np.array([50.0, 50.0, 50.0])
        matches, _, _ = tree.knn_traverse(
            euclidean_bound(query),
            lambda i, v: -float(np.linalg.norm(points[i] - query)),
            5,
        )
        exact = sorted(
            ((-float(np.linalg.norm(p - query)), i) for i, p in enumerate(points)),
            reverse=True,
        )[:5]
        assert [s for _, s in matches] == pytest.approx([s for s, _ in exact])

    def test_insert_into_bulk_loaded_tree(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(0, 10, size=(60, 2))
        tree = RTree(leaf_capacity=8, fanout=4).bulk_load(points)
        for i in range(60, 90):
            tree.insert(i, rng.uniform(0, 10, size=2))
        check_invariants(tree)
        entries, _ = tree.range_query(lambda a, b: 1.0, 0.5)
        assert len(entries) == 90

    def test_dimension_mismatch_rejected(self):
        tree = RTree().bulk_load(np.zeros((3, 4)))
        with pytest.raises(ValueError, match="dimension"):
            tree.insert(9, np.zeros(2))


class TestDualTransInsert:
    def test_search_exact_after_inserts(self, zipf_small):
        from repro.baselines import BruteForceSearch, DualTransSearch
        from repro.core import Dataset
        from repro.core.sets import SetRecord

        dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
        search = DualTransSearch(dataset, dim=8)
        # Insert 20 new sets, some with brand-new tokens.
        for i in range(20):
            new_tokens = dataset.universe.intern_all([f"dt-new-{i}", f"dt-new-{i + 1}"])
            base = list(dataset.records[i].distinct)[:3]
            index = dataset.append(SetRecord(base + new_tokens))
            search.insert(index)
        brute = BruteForceSearch(dataset)
        for i in (0, len(dataset) - 1):
            query = dataset.records[i]
            assert (
                search.range_search(query, 0.5).matches
                == brute.range_search(query, 0.5).matches
            )
            expected = sorted(s for _, s in brute.knn_search(query, 5).matches)
            actual = sorted(s for _, s in search.knn_search(query, 5).matches)
            assert actual == pytest.approx(expected)
