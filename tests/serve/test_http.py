"""Integration tests for the HTTP layer (:mod:`repro.serve.http`).

Every test binds a real server on an ephemeral port (``port=0``) and
talks to it over a real socket.  The load-bearing assertions from the
PR-6 acceptance criteria live here: server answers are bit-identical to
direct engine calls, concurrent clients coalesce without corruption,
saturation answers ``503`` + ``Retry-After``, and ``/healthz`` reports
``loading`` before the index is up.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import Dataset, LES3, __version__, save_engine
from repro.api import QueryRequest, execute, load
from repro.distributed import ShardedLES3, save_sharded
from repro.serve import ReproServer, request_json, wait_ready
from repro.serve.http import MAX_BODY_BYTES


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    rows = [[f"t{(i * 7 + j * 3) % 37}" for j in range(2 + i % 6)] for i in range(160)]
    return Dataset.from_token_lists(rows)


@pytest.fixture(scope="module")
def single_dir(dataset, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("serve") / "single"
    save_engine(LES3.build(dataset, num_groups=8), path)
    return str(path)


@pytest.fixture(scope="module")
def sharded_dir(dataset, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("serve") / "sharded"
    save_sharded(ShardedLES3.build(dataset, num_shards=3, num_groups=8), path)
    return str(path)


def _query(dataset: Dataset, index: int) -> list:
    return [
        dataset.universe.token_of(t) for t in dataset.records[index].tokens
    ]


async def _ready_server(directory: str, **options) -> ReproServer:
    server = ReproServer(directory, port=0, **options)
    await server.start()
    await wait_ready(server.host, server.port)
    return server


@pytest.mark.parametrize(
    "directory_fixture, mode",
    [("single_dir", "memory"), ("sharded_dir", "memory"), ("sharded_dir", "lazy")],
)
def test_server_is_bit_identical_to_direct_calls(
    directory_fixture, mode, dataset, request
):
    directory = request.getfixturevalue(directory_fixture)

    async def main():
        server = await _ready_server(directory, mode=mode)
        reference = load(directory, mode=mode)
        try:
            for index in range(0, 12, 3):
                tokens = _query(dataset, index)
                for path, payload, req in [
                    ("/knn", {"tokens": tokens, "k": 5}, QueryRequest.knn(tokens, k=5)),
                    (
                        "/range",
                        {"tokens": tokens, "threshold": 0.5},
                        QueryRequest.range(tokens, threshold=0.5),
                    ),
                ]:
                    status, body = await request_json(
                        server.host, server.port, "POST", path, payload
                    )
                    assert status == 200
                    assert body == execute(reference, req).to_payload()
            status, body = await request_json(
                server.host, server.port, "POST", "/join", {"threshold": 0.9}
            )
            assert status == 200
            assert body == execute(
                reference, QueryRequest.join(threshold=0.9)
            ).to_payload()
        finally:
            await server.stop()
            if hasattr(reference, "close"):
                reference.close()

    asyncio.run(main())


def test_concurrent_clients_batch_and_stay_correct(single_dir, dataset):
    async def main():
        server = await _ready_server(single_dir, batch_window_ms=10.0)
        reference = load(single_dir)
        try:
            requests = [QueryRequest.knn(_query(dataset, i % 40), k=3) for i in range(48)]

            async def one(req):
                return await request_json(
                    server.host,
                    server.port,
                    "POST",
                    "/knn",
                    {"tokens": list(req.tokens), "k": req.k},
                )

            answers = await asyncio.gather(*(one(r) for r in requests))
            for req, (status, body) in zip(requests, answers):
                assert status == 200
                assert body == execute(reference, req).to_payload()
            status, stats = await request_json(server.host, server.port, "GET", "/stats")
            service = stats["service"]
            assert service["queries_served"] == 48
            assert service["batches_dispatched"] < 48  # micro-batching engaged
            assert service["mean_batch_size"] > 1.0
        finally:
            await server.stop()

    asyncio.run(main())


def test_healthz_reports_loading_then_ok(single_dir):
    async def main():
        # Gate the load so the not-ready window is deterministic: the
        # server binds first, and /healthz answers 503 "loading" (and
        # query endpoints shed) until the engine is allowed through.
        gate = asyncio.Event()

        class _GatedServer(ReproServer):
            async def _bring_up(self):
                await gate.wait()
                await super()._bring_up()

        server = _GatedServer(single_dir, port=0)
        await server.start()
        status, body = await request_json(server.host, server.port, "GET", "/healthz")
        assert status == 503 and body["status"] == "loading"
        status, body = await request_json(
            server.host, server.port, "POST", "/knn", {"tokens": ["t1"], "k": 1}
        )
        assert status == 503 and "loading" in body["error"]
        gate.set()
        await wait_ready(server.host, server.port)
        status, body = await request_json(server.host, server.port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        await server.stop()

    asyncio.run(main())


def test_load_failure_surfaces_in_healthz(tmp_path):
    async def main():
        server = ReproServer(str(tmp_path / "missing"), port=0)
        await server.start()
        with pytest.raises(FileNotFoundError):
            await server.ready()
        status, body = await request_json(server.host, server.port, "GET", "/healthz")
        assert status == 503 and body["status"] == "failed"
        status, body = await request_json(
            server.host, server.port, "POST", "/knn", {"tokens": ["a"], "k": 1}
        )
        assert status == 503 and "failed to load" in body["error"]
        await server.stop()

    asyncio.run(main())


def test_saturation_answers_503_with_retry_after(single_dir, dataset):
    async def main():
        # max_queue=1 plus a long batch window: the first request parks in
        # the batcher and every concurrent one must be shed.
        server = await _ready_server(
            single_dir, batch_window_ms=300.0, max_queue=1
        )
        try:
            tokens = _query(dataset, 0)

            async def raw_roundtrip():
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                body = json.dumps({"tokens": tokens, "k": 3}).encode()
                writer.write(
                    (
                        f"POST /knn HTTP/1.1\r\nHost: t\r\n"
                        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
                    ).encode()
                    + body
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                status = int(raw.split(b" ", 2)[1])
                headers, _, payload = raw.partition(b"\r\n\r\n")
                return status, headers.decode("latin-1"), json.loads(payload)

            results = await asyncio.gather(*(raw_roundtrip() for _ in range(6)))
            statuses = [status for status, _, _ in results]
            assert 200 in statuses, statuses
            assert 503 in statuses, statuses
            for status, headers, payload in results:
                if status == 503:
                    assert "Retry-After:" in headers
                    assert "retry later" in payload["error"]
        finally:
            await server.stop()

    asyncio.run(main())


def test_protocol_errors(single_dir):
    async def main():
        server = await _ready_server(single_dir)
        host, port = server.host, server.port
        try:
            status, body = await request_json(host, port, "GET", "/nope")
            assert status == 404
            status, body = await request_json(host, port, "GET", "/knn")
            assert status == 405
            status, body = await request_json(host, port, "POST", "/stats")
            assert status == 405
            status, body = await request_json(
                host, port, "POST", "/knn", {"tokens": [], "k": 1}
            )
            assert status == 400 and "token" in body["error"]
            status, body = await request_json(
                host, port, "POST", "/knn", {"tokens": ["a"], "k": 1, "oops": True}
            )
            assert status == 400 and "oops" in body["error"]

            # Raw junk: bad JSON, bad request line, oversized body.
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /knn HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\n\r\n{{{"
            )
            await writer.drain()
            raw = await reader.readline()
            assert b"400" in raw
            writer.close()

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            raw = await reader.readline()
            assert b"400" in raw
            writer.close()

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"POST /knn HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.readline()
            assert b"413" in raw
            writer.close()
        finally:
            await server.stop()

    asyncio.run(main())


def test_stats_endpoint_shape(sharded_dir):
    async def main():
        server = await _ready_server(sharded_dir, mode="lazy")
        try:
            status, stats = await request_json(server.host, server.port, "GET", "/stats")
            assert status == 200
            assert stats["version"] == __version__
            assert stats["ready"] is True
            assert stats["mode"] == "lazy"
            assert stats["num_shards"] == 3
            assert stats["num_records"] == 160
            service = stats["service"]
            assert service["max_batch"] == 64 and service["max_queue"] == 256
            assert service["queue_depth"] == 0
        finally:
            await server.stop()

    asyncio.run(main())


def test_keep_alive_connections_are_reused(single_dir, dataset):
    from repro.serve.http import _roundtrip

    async def main():
        server = await _ready_server(single_dir)
        try:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            tokens = _query(dataset, 0)
            for _ in range(3):  # three requests down one connection
                status, body = await _roundtrip(
                    reader, writer, "POST", "/knn", {"tokens": tokens, "k": 2}
                )
                assert status == 200 and body["count"] == 2
            writer.close()
        finally:
            await server.stop()

    asyncio.run(main())


def test_cli_has_a_serve_command():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "some-index", "--port", "0", "--mode", "lazy", "--max-batch", "8"]
    )
    assert args.command == "serve"
    assert args.port == 0 and args.mode == "lazy" and args.max_batch == 8
    assert args.batch_window_ms == 2.0 and args.max_queue == 256


# -- deadlines, drain, and shutdown ------------------------------------------


def test_timeout_answers_504(single_dir, dataset):
    async def main():
        # Budget far below the batch window: the request expires queued.
        server = await _ready_server(single_dir, batch_window_ms=200.0)
        try:
            status, body = await request_json(
                server.host, server.port, "POST", "/knn",
                {"tokens": _query(dataset, 0), "k": 3, "timeout_ms": 10},
            )
            assert status == 504
            assert "budget" in body["error"]
            status, stats = await request_json(
                server.host, server.port, "GET", "/stats"
            )
            assert stats["service"]["queries_timed_out"] == 1
            assert stats["service"]["timed_out_by_kind"] == {"knn": 1}
        finally:
            await server.stop()

    asyncio.run(main())


def test_server_default_timeout_applies(single_dir, dataset):
    async def main():
        server = await _ready_server(
            single_dir, batch_window_ms=200.0, default_timeout_ms=10
        )
        try:
            status, body = await request_json(
                server.host, server.port, "POST", "/knn",
                {"tokens": _query(dataset, 0), "k": 3},
            )
            assert status == 504
        finally:
            await server.stop()

    asyncio.run(main())


def test_stats_reports_timeout_knobs(single_dir):
    async def main():
        server = await _ready_server(
            single_dir, default_timeout_ms=5000, max_timeout_ms=30_000
        )
        try:
            status, stats = await request_json(
                server.host, server.port, "GET", "/stats"
            )
            service = stats["service"]
            assert service["default_timeout_ms"] == 5000
            assert service["max_timeout_ms"] == 30_000
            for key in ("queries_timed_out", "late_results", "timed_out_by_kind"):
                assert key in service
        finally:
            await server.stop()

    asyncio.run(main())


def test_drain_finishes_in_flight_then_stops(single_dir, dataset):
    async def main():
        server = await _ready_server(single_dir, batch_window_ms=200.0)
        task = asyncio.ensure_future(
            request_json(
                server.host, server.port, "POST", "/knn",
                {"tokens": _query(dataset, 0), "k": 3},
            )
        )
        await asyncio.sleep(0.05)  # parked in the batcher
        await server.drain()
        status, body = await task
        assert status == 200 and body["count"] == 3  # in-flight work finished
        with pytest.raises(OSError):
            await request_json(server.host, server.port, "GET", "/healthz")

    asyncio.run(main())


def test_sigterm_drains_and_exits_zero(single_dir):
    import os
    import re
    import signal
    import subprocess
    import sys
    import time as time_mod

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", single_dir,
         "--port", "0", "--drain-seconds", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        seen = []
        while True:
            line = proc.stdout.readline()
            if not line:
                pytest.fail(f"server exited before announcing: {seen!r}")
            seen.append(line)
            if re.search(r"listening on http://", line):
                break
        proc.send_signal(signal.SIGTERM)
        deadline = time_mod.monotonic() + 20.0
        while proc.poll() is None and time_mod.monotonic() < deadline:
            time_mod.sleep(0.05)
        assert proc.poll() == 0, (proc.poll(), proc.stdout.read())
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
