"""Unit tests for the micro-batcher core (:mod:`repro.serve.service`).

Everything here runs against a real (small) engine but no HTTP: batching
behavior, the admission bound, lifecycle, and the stats the ``/stats``
endpoint reports.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import Dataset, LES3
from repro.api import QueryRequest, execute
from repro.serve import QueryService, ServiceOverloaded, ServiceStats


@pytest.fixture(scope="module")
def engine() -> LES3:
    rows = [[f"t{(i * 5 + j) % 29}" for j in range(2 + i % 5)] for i in range(120)]
    return LES3.build(Dataset.from_token_lists(rows), num_groups=8)


def _query(engine: LES3, index: int) -> list:
    return [
        engine.dataset.universe.token_of(t)
        for t in engine.dataset.records[index].tokens
    ]


def test_submit_answers_bit_identically(engine):
    async def main():
        async with QueryService(engine) as service:
            request = QueryRequest.knn(_query(engine, 0), k=4)
            result = await service.submit(request)
            assert result.matches == execute(engine, request).matches
            request = QueryRequest.range(_query(engine, 1), threshold=0.5)
            assert (await service.submit(request)).matches == execute(
                engine, request
            ).matches

    asyncio.run(main())


def test_concurrent_requests_coalesce_into_batches(engine):
    async def main():
        # A generous window so every concurrently submitted request lands
        # in one batch deterministically.
        async with QueryService(engine, batch_window_ms=50.0, max_batch=64) as service:
            requests = [QueryRequest.knn(_query(engine, i), k=3) for i in range(32)]
            results = await asyncio.gather(*(service.submit(r) for r in requests))
            for request, result in zip(requests, results):
                assert result.matches == execute(engine, request).matches
            assert service.stats.queries_served == 32
            assert service.stats.batches_dispatched < 32  # really coalesced
            assert max(service.stats.batch_sizes) > 1

    asyncio.run(main())


def test_max_batch_bounds_batch_size(engine):
    async def main():
        async with QueryService(engine, batch_window_ms=50.0, max_batch=4) as service:
            requests = [QueryRequest.knn(_query(engine, i), k=3) for i in range(10)]
            await asyncio.gather(*(service.submit(r) for r in requests))
            assert max(service.stats.batch_sizes) <= 4

    asyncio.run(main())


def test_admission_bound_sheds_load(engine):
    async def main():
        # One slot: the second in-flight request must be rejected with the
        # Retry-After hint the HTTP layer forwards.
        async with QueryService(engine, batch_window_ms=200.0, max_queue=1) as service:
            first = asyncio.ensure_future(
                service.submit(QueryRequest.knn(_query(engine, 0), k=3))
            )
            await asyncio.sleep(0)  # let it enter the queue
            with pytest.raises(ServiceOverloaded) as caught:
                await service.submit(QueryRequest.knn(_query(engine, 1), k=3))
            assert caught.value.retry_after >= 1
            assert service.stats.queries_rejected == 1
            assert (await first).matches  # the admitted one still completes

    asyncio.run(main())


def test_engine_errors_fail_the_request_not_the_service(engine):
    async def main():
        async with QueryService(engine, batch_window_ms=0.0) as service:
            bogus = QueryRequest(kind="fuzzy", tokens=("a",))
            with pytest.raises(ValueError, match="unknown query kind"):
                await service.submit(bogus)
            assert service.stats.queries_failed == 1
            # The service survives and keeps answering.
            good = QueryRequest.knn(_query(engine, 2), k=2)
            assert (await service.submit(good)).matches == execute(engine, good).matches

    asyncio.run(main())


def test_submit_after_stop_is_a_connection_error(engine):
    async def main():
        service = QueryService(engine)
        await service.start()
        await service.stop()
        with pytest.raises(ConnectionError):
            await service.submit(QueryRequest.knn(_query(engine, 0), k=1))

    asyncio.run(main())


def test_constructor_validates_knobs(engine):
    for kwargs in (
        {"batch_window_ms": -1},
        {"max_batch": 0},
        {"max_queue": 0},
        {"concurrency": 0},
    ):
        with pytest.raises(ValueError):
            QueryService(engine, **kwargs)


def test_shard_workers_knob_sets_engine_pool_size(engine):
    # On a single-node engine the attribute simply appears; on a sharded
    # one it caps the existing query_workers pool — either way the service
    # records the caller's intent on the engine it owns.
    QueryService(engine, shard_workers=2)
    assert engine.query_workers == 2


def test_stats_snapshot_shape(engine):
    async def main():
        async with QueryService(engine, batch_window_ms=20.0) as service:
            await asyncio.gather(
                *(
                    service.submit(QueryRequest.knn(_query(engine, i), k=2))
                    for i in range(8)
                )
            )
            snapshot = service.stats.snapshot()
            assert snapshot["queries_served"] == 8
            assert snapshot["served_by_kind"]["knn"] == 8
            assert snapshot["uptime_seconds"] >= 0
            assert snapshot["mean_batch_size"] >= 1
            assert sum(
                int(size) * count
                for size, count in snapshot["batch_size_histogram"].items()
            ) == 8
            assert snapshot["latency_ms"]["p99"] >= snapshot["latency_ms"]["p50"] > 0

    asyncio.run(main())


def test_latency_reservoir_is_bounded():
    stats = ServiceStats()
    for i in range(10_000):
        stats.record_served("knn", i * 1e-6)
    assert len(stats.latencies) <= 4096
    quantiles = stats.latency_quantiles()
    assert quantiles["p99"] >= quantiles["p50"]


def test_empty_stats_are_json_safe():
    snapshot = ServiceStats().snapshot()
    assert snapshot["latency_ms"] == {"p50": 0.0, "p99": 0.0}
    assert snapshot["mean_batch_size"] == 0.0


# -- deadlines ----------------------------------------------------------------


def test_timeout_expires_queued_request(engine):
    from repro.serve import DeadlineExceeded

    async def main():
        # A long batch window so the 10ms budget expires while the
        # request is still queued — deterministic, no slow engine needed.
        async with QueryService(engine, batch_window_ms=150.0) as service:
            request = QueryRequest.knn(_query(engine, 0), k=3, timeout_ms=10)
            with pytest.raises(DeadlineExceeded, match="budget"):
                await service.submit(request)
            assert service.stats.queries_timed_out == 1
            assert service.stats.timed_out_by_kind == {"knn": 1}
            # The whole batch expired before dispatch, so the engine never
            # ran it: no served answers, and the reservoir stays clean.
            await asyncio.sleep(0.3)
            assert service.stats.queries_served == 0
            assert service.stats.latencies == []

    asyncio.run(main())


def test_late_result_is_counted_and_kept_out_of_reservoir(engine):
    from repro.serve import DeadlineExceeded

    async def main():
        # Two requests with the same 100ms budget, admitted 150ms apart
        # inside one 200ms batch window: the batch runs on the *most
        # patient* member's deadline, so the early request expires (504)
        # while the late one is served — and the early one's wasted
        # answer lands in ``late_results``, not the latency reservoir.
        async with QueryService(engine, batch_window_ms=200.0) as service:
            early = QueryRequest.knn(_query(engine, 0), k=3, timeout_ms=100)
            late = QueryRequest.knn(_query(engine, 1), k=3, timeout_ms=100)
            first = asyncio.ensure_future(service.submit(early))
            await asyncio.sleep(0.15)
            second = asyncio.ensure_future(service.submit(late))
            with pytest.raises(DeadlineExceeded):
                await first
            result = await second
            assert result.matches == execute(engine, late).matches
            assert service.stats.queries_timed_out == 1
            assert service.stats.late_results == 1
            assert service.stats.queries_served == 1
            assert len(service.stats.latencies) == 1

    asyncio.run(main())


def test_default_timeout_applies_to_bare_requests(engine):
    from repro.serve import DeadlineExceeded

    async def main():
        async with QueryService(
            engine, batch_window_ms=150.0, default_timeout_ms=10
        ) as service:
            with pytest.raises(DeadlineExceeded):
                await service.submit(QueryRequest.knn(_query(engine, 0), k=3))

    asyncio.run(main())


def test_max_timeout_caps_client_budgets(engine):
    from repro.serve import DeadlineExceeded

    async def main():
        async with QueryService(
            engine, batch_window_ms=150.0, max_timeout_ms=10
        ) as service:
            request = QueryRequest.knn(_query(engine, 0), k=3, timeout_ms=60_000)
            with pytest.raises(DeadlineExceeded):
                await service.submit(request)

    asyncio.run(main())


def test_generous_timeout_serves_normally(engine):
    async def main():
        async with QueryService(engine, default_timeout_ms=60_000) as service:
            request = QueryRequest.knn(_query(engine, 0), k=3, timeout_ms=30_000)
            result = await service.submit(request)
            assert result.matches == execute(engine, request).matches
            assert service.stats.queries_timed_out == 0
            assert service.stats.late_results == 0
            snapshot = service.stats.snapshot()
            for key in ("queries_timed_out", "late_results", "timed_out_by_kind"):
                assert key in snapshot

    asyncio.run(main())


def test_timeout_knob_validation(engine):
    with pytest.raises(ValueError, match="default_timeout_ms"):
        QueryService(engine, default_timeout_ms=0)
    with pytest.raises(ValueError, match="max_timeout_ms"):
        QueryService(engine, max_timeout_ms=-5)
