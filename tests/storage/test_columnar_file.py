"""Binary columnar format: round trips, the corruption matrix, laziness.

The contract under test: a ``dataset.bin`` written by
:class:`ColumnarFileWriter` reconstructs the identical dataset through
both read modes (``"memory"`` verifies digests eagerly, ``"mmap"`` maps
pages lazily), and *every* way the file can be damaged — truncated
segments, flipped payload bytes, headers claiming more data than the
file holds, headers inconsistent with the index manifest — raises
:class:`PersistenceError` instead of serving a wrong-answer dataset.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import Dataset, PersistenceError
from repro.storage import ColumnarFileReader, ColumnarFileWriter, MappedColumnarView
from repro.storage.columnar_file import COLUMNAR_MAGIC, LazyRecords

TOKEN_LISTS = [
    ["a", "b"],
    ["b", "c", "c", "c"],  # multiset: duplicate tokens survive the trip
    ["x"],
    ["a", "x", "y", "z"],
    ["b", "y"],
]


@pytest.fixture()
def dataset() -> Dataset:
    return Dataset.from_token_lists(TOKEN_LISTS)


@pytest.fixture()
def bin_path(dataset, tmp_path):
    path = tmp_path / "dataset.bin"
    ColumnarFileWriter(path).write(dataset)
    return path


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["memory", "mmap"])
    def test_records_identical(self, dataset, bin_path, mode):
        loaded = ColumnarFileReader(bin_path, mode=mode).dataset()
        assert len(loaded) == len(dataset)
        assert [record.tokens for record in loaded] == [
            record.tokens for record in dataset
        ]

    def test_universe_preserves_ids_and_unused_tokens(self, tmp_path):
        from repro.core.tokens import TokenUniverse

        universe = TokenUniverse(["u0", "u1", "unused", "u3"])
        dataset = Dataset.from_token_lists([["u0", "u3"], ["u1"]], universe)
        path = tmp_path / "dataset.bin"
        ColumnarFileWriter(path).write(dataset)
        loaded = ColumnarFileReader(path).dataset()
        # Unlike a text reload, the binary universe keeps every slot —
        # including tokens no record uses — in the original id order.
        assert list(loaded.universe) == ["u0", "u1", "unused", "u3"]

    def test_mmap_segments_are_memory_mapped(self, bin_path):
        reader = ColumnarFileReader(bin_path, mode="mmap")
        assert isinstance(reader.segment("tokens"), np.memmap)
        view = reader.view()
        assert isinstance(view, MappedColumnarView)
        assert view.num_records == len(TOKEN_LISTS)

    def test_memory_mode_copies_out_of_the_file(self, bin_path):
        reader = ColumnarFileReader(bin_path, mode="memory")
        assert not isinstance(reader.segment("tokens"), np.memmap)

    def test_view_matches_in_memory_columnar_view(self, dataset, bin_path):
        original = dataset.columnar()
        mapped = ColumnarFileReader(bin_path).view()
        for i in range(len(dataset)):
            assert mapped.tokens_of(i).tolist() == original.tokens_of(i).tolist()
            assert mapped.counts_of(i).tolist() == original.counts_of(i).tolist()
            assert mapped.size_of(i) == original.size_of(i)

    def test_verify_passes_on_clean_file(self, bin_path):
        ColumnarFileReader(bin_path).verify()

    def test_header_reports_totals(self, dataset, bin_path):
        reader = ColumnarFileReader(bin_path)
        assert reader.num_records == len(dataset)
        assert reader.nnz == dataset.columnar().nnz
        assert reader.universe_size == len(dataset.universe)

    def test_empty_dataset_round_trips(self, tmp_path):
        empty = Dataset.from_token_lists([])
        path = tmp_path / "dataset.bin"
        ColumnarFileWriter(path).write(empty)
        loaded = ColumnarFileReader(path).dataset()
        assert len(loaded) == 0
        assert len(loaded.universe) == 0


class TestLazyRecords:
    def test_materializes_on_demand_and_supports_append(self, dataset, bin_path):
        from repro.core.sets import SetRecord

        loaded = ColumnarFileReader(bin_path).dataset()
        records = loaded.records
        assert isinstance(records, LazyRecords)
        assert records[1].counts()[loaded.universe.id_of("c")] == 3  # multiset
        assert records[-1].tokens == dataset.records[-1].tokens
        assert records[1:3] == [dataset.records[1], dataset.records[2]]
        with pytest.raises(IndexError):
            records[len(dataset)]
        new_index = loaded.append(SetRecord([loaded.universe.intern("a")]))
        assert new_index == len(dataset)
        assert len(loaded) == len(dataset) + 1
        assert loaded.records[new_index].tokens == (loaded.universe.id_of("a"),)


def _flip_byte(path, offset: int) -> None:
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def _header(path) -> dict:
    raw = path.read_bytes()
    size = int.from_bytes(raw[8:16], "little")
    return json.loads(raw[16:16 + size].decode())


def _data_start(path) -> int:
    size = int.from_bytes(path.read_bytes()[8:16], "little")
    return (16 + size + 63) // 64 * 64


def _rewrite_header(path, header: dict) -> None:
    """Replace the header JSON, keeping the segment bytes as they were.

    Segment offsets are relative to the (realigned) data start, so a
    header of any new length still addresses the same payload bytes.
    """
    raw = path.read_bytes()
    payload = json.dumps(header).encode()
    start = (16 + len(payload) + 63) // 64 * 64
    rebuilt = COLUMNAR_MAGIC + len(payload).to_bytes(8, "little") + payload
    rebuilt += b"\x00" * (start - len(rebuilt)) + raw[_data_start(path):]
    path.write_bytes(rebuilt)


class TestCorruptionMatrix:
    """Every damage mode must raise PersistenceError, never load wrongly."""

    def test_bad_magic(self, bin_path):
        _flip_byte(bin_path, 0)
        with pytest.raises(PersistenceError, match="bad magic"):
            ColumnarFileReader(bin_path)

    def test_truncated_header(self, bin_path):
        bin_path.write_bytes(bin_path.read_bytes()[:12])
        with pytest.raises(PersistenceError):
            ColumnarFileReader(bin_path)

    def test_garbage_header_json(self, bin_path):
        _flip_byte(bin_path, 20)
        with pytest.raises(PersistenceError):
            ColumnarFileReader(bin_path)

    @pytest.mark.parametrize("mode", ["memory", "mmap"])
    def test_truncated_segment(self, bin_path, mode):
        """A file cut mid-segment is rejected in BOTH read modes."""
        bin_path.write_bytes(bin_path.read_bytes()[:-8])
        with pytest.raises(PersistenceError, match="shorter than its header claims"):
            ColumnarFileReader(bin_path, mode=mode)

    def test_mmap_of_file_shorter_than_header_claims(self, bin_path):
        """The header can claim arbitrary sizes; the real file length rules."""
        header = _header(bin_path)
        nnz = header["nnz"]
        header["nnz"] = nnz * 1000
        for segment in header["segments"]:
            if segment["name"] in ("tokens", "counts"):
                segment["count"] = nnz * 1000
                segment["nbytes"] = segment["nbytes"] * 1000
        _rewrite_header(bin_path, header)
        with pytest.raises(PersistenceError, match="shorter than its header claims"):
            ColumnarFileReader(bin_path, mode="mmap")

    def test_non_monotone_offsets_rejected(self, bin_path):
        """A corrupt offsets array must never steer out-of-bounds gathers."""
        header = _header(bin_path)
        offsets_entry = next(s for s in header["segments"] if s["name"] == "offsets")
        offset = _data_start(bin_path) + offsets_entry["offset"]
        raw = bytearray(bin_path.read_bytes())
        raw[offset + 8:offset + 16] = (2 ** 40).to_bytes(8, "little")
        bin_path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError, match="monotone"):
            ColumnarFileReader(bin_path, mode="mmap")

    def test_bad_segment_digest_memory_mode(self, bin_path):
        header = _header(bin_path)
        # Flip a byte inside the tokens segment payload.
        _flip_byte(bin_path, _data_start(bin_path) + header["segments"][0]["offset"])
        with pytest.raises(PersistenceError, match="digest mismatch"):
            ColumnarFileReader(bin_path, mode="memory").segment("tokens")

    def test_bad_segment_digest_caught_by_verify(self, bin_path):
        header = _header(bin_path)
        _flip_byte(bin_path, _data_start(bin_path) + header["segments"][0]["offset"])
        reader = ColumnarFileReader(bin_path, mode="mmap")  # opens fine ...
        with pytest.raises(PersistenceError, match="digest mismatch"):
            reader.verify()  # ... but the full pass catches it

    def test_invalid_utf8_universe_blob(self, bin_path):
        """mmap opens skip payload digests, but a garbage blob still gets a
        clean PersistenceError from universe(), never a UnicodeDecodeError."""
        header = _header(bin_path)
        blob_entry = next(s for s in header["segments"] if s["name"] == "universe_blob")
        raw = bytearray(bin_path.read_bytes())
        raw[_data_start(bin_path) + blob_entry["offset"]] = 0xFF  # invalid UTF-8
        bin_path.write_bytes(bytes(raw))
        reader = ColumnarFileReader(bin_path, mode="mmap")
        with pytest.raises(PersistenceError, match="not valid UTF-8"):
            reader.universe()

    def test_not_a_columnar_file(self, tmp_path):
        path = tmp_path / "dataset.bin"
        path.write_text("one two three\n")
        with pytest.raises(PersistenceError):
            ColumnarFileReader(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ColumnarFileReader(tmp_path / "nope.bin")
