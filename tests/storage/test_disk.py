"""Tests for the simulated disk cost model."""

import pytest

from repro.storage import HDD_5400RPM, SSD_SATA, SimulatedDisk


class TestProfiles:
    def test_hdd_random_penalty(self):
        assert HDD_5400RPM.random_penalty_ms() == pytest.approx(8.0 + 5.56)

    def test_transfer_time_80mbps(self):
        # 80 MB at 80 MB/s = 1 s = 1000 ms.
        assert HDD_5400RPM.transfer_ms(80_000_000) == pytest.approx(1000.0)

    def test_ssd_faster_random(self):
        assert SSD_SATA.random_penalty_ms() < HDD_5400RPM.random_penalty_ms()


class TestSimulatedDisk:
    def test_pages_for_rounds_up(self):
        disk = SimulatedDisk()
        assert disk.pages_for(1) == 1
        assert disk.pages_for(4096) == 1
        assert disk.pages_for(4097) == 2
        assert disk.pages_for(0) == 1

    def test_random_read_charges_seek(self):
        disk = SimulatedDisk()
        cost = disk.random_read(1)
        assert cost > HDD_5400RPM.random_penalty_ms()
        assert disk.stats.random_accesses == 1
        assert disk.stats.pages_read == 1

    def test_sequential_read_cheaper_than_random(self):
        disk = SimulatedDisk()
        sequential = disk.sequential_read(10)
        random_cost = disk.random_read(10)
        assert sequential < random_cost

    def test_zero_pages_free(self):
        disk = SimulatedDisk()
        assert disk.random_read(0) == 0.0
        assert disk.sequential_read(0) == 0.0
        assert disk.stats.total_ms == 0.0

    def test_full_scan_accounting(self):
        disk = SimulatedDisk()
        disk.full_scan(1_000_000)
        assert disk.stats.pages_read == disk.pages_for(1_000_000)
        assert disk.stats.total_ms > 0

    def test_stats_accumulate_and_reset(self):
        disk = SimulatedDisk()
        disk.random_read(2)
        disk.sequential_read(3)
        assert disk.stats.pages_read == 5
        disk.stats.reset()
        assert disk.stats.pages_read == 0
        assert disk.stats.total_ms == 0.0

    def test_many_random_beats_one_scan_crossover(self):
        """The access-pattern crossover the Figure 13 story rests on:
        scattered random reads lose to one sequential scan once the seek
        count is large enough."""
        scan_disk = SimulatedDisk()
        scan_disk.full_scan(10_000_000)  # ~10 MB file
        random_disk = SimulatedDisk()
        for _ in range(200):
            random_disk.random_read(1)
        assert random_disk.stats.total_ms > scan_disk.stats.total_ms


class TestDiskExecution:
    def test_les3_vs_brute_force_pattern(self, zipf_small):
        from repro.baselines import BruteForceSearch
        from repro.core import TokenGroupMatrix
        from repro.partitioning import MinTokenPartitioner
        from repro.storage import DiskBruteForce, DiskLES3

        partition = MinTokenPartitioner().partition(zipf_small, 10)
        tgm = TokenGroupMatrix(zipf_small, partition.groups)
        query = zipf_small.records[0]

        les3_disk = SimulatedDisk()
        DiskLES3(zipf_small, tgm, les3_disk).range_search(query, 0.8)
        brute_disk = SimulatedDisk()
        DiskBruteForce(BruteForceSearch(zipf_small), brute_disk).range_search(query, 0.8)

        # LES3 reads only surviving groups; brute force reads every page.
        assert les3_disk.stats.pages_read <= brute_disk.stats.pages_read

    def test_results_unaffected_by_disk_model(self, zipf_small):
        from repro.baselines import BruteForceSearch, DualTransSearch, InvertedIndexSearch
        from repro.storage import DiskDualTrans, DiskInvertedIndex

        query = zipf_small.records[4]
        expected = BruteForceSearch(zipf_small).range_search(query, 0.5).matches
        dualtrans = DiskDualTrans(DualTransSearch(zipf_small, dim=8), SimulatedDisk())
        invidx = DiskInvertedIndex(InvertedIndexSearch(zipf_small), SimulatedDisk())
        assert dualtrans.range_search(query, 0.5).matches == expected
        assert invidx.range_search(query, 0.5).matches == expected

    def test_knn_charges_io(self, zipf_small):
        from repro.baselines import InvertedIndexSearch
        from repro.storage import DiskInvertedIndex

        disk = SimulatedDisk()
        DiskInvertedIndex(InvertedIndexSearch(zipf_small), disk).knn_search(
            zipf_small.records[0], 5
        )
        assert disk.stats.total_ms > 0
