"""The unified query API: ``repro.load``, request/result types, execution.

Covers the PR-6 API redesign contract:

* :func:`repro.load` auto-detects single-engine vs sharded saves and is
  the one entry point every consumer routes through;
* the legacy loaders survive as thin wrappers that emit
  :class:`DeprecationWarning` and answer identically;
* :class:`QueryRequest` validates eagerly and uniformly;
* :func:`repro.api.execute_batch` is bit-identical to per-request
  :func:`repro.api.execute` (the micro-batcher's correctness premise);
* both engine classes expose one canonical query-method signature set
  (checked with :func:`inspect.signature`, so drift fails loudly).
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import Dataset, LES3, load_engine, save_engine
from repro.api import QUERY_KINDS, QueryRequest, QueryResult, execute, execute_batch
from repro.core.persistence import PersistenceError
from repro.distributed import ShardedLES3, load_sharded, save_sharded


@pytest.fixture(scope="module")
def api_dataset() -> Dataset:
    # String tokens so a save/load round-trip preserves the universe
    # exactly (dataset.txt is textual) and loaded engines answer queries
    # bit-identically to the in-memory ones they were built from.
    rows = [
        [f"t{(i * 7 + j * 3) % 41}" for j in range(2 + i % 6)] for i in range(180)
    ]
    return Dataset.from_token_lists(rows)


@pytest.fixture(scope="module")
def engine(api_dataset: Dataset) -> LES3:
    return LES3.build(api_dataset, num_groups=12)


@pytest.fixture(scope="module")
def sharded(api_dataset: Dataset) -> ShardedLES3:
    return ShardedLES3.build(api_dataset, num_shards=3, num_groups=12)


@pytest.fixture(scope="module")
def single_dir(engine: LES3, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("api") / "single"
    save_engine(engine, path)
    return str(path)


@pytest.fixture(scope="module")
def sharded_dir(sharded: ShardedLES3, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("api") / "sharded"
    save_sharded(sharded, path)
    return str(path)


def _tokens(dataset: Dataset, index: int) -> list:
    return [dataset.universe.token_of(t) for t in dataset.records[index].tokens]


# -- repro.load --------------------------------------------------------------


def test_load_autodetects_single(single_dir, engine):
    loaded = repro.load(single_dir)
    assert isinstance(loaded, LES3)
    query = _tokens(engine.dataset, 0)
    assert loaded.knn(query, k=3).matches == engine.knn(query, k=3).matches


@pytest.mark.parametrize("mode", ["memory", "mmap", "lazy"])
def test_load_autodetects_sharded(sharded_dir, sharded, mode):
    loaded = repro.load(sharded_dir, mode=mode)
    assert isinstance(loaded, ShardedLES3)
    assert loaded.is_lazy == (mode == "lazy")
    query = _tokens(sharded.dataset, 1)
    assert loaded.knn(query, k=3).matches == sharded.knn(query, k=3).matches


def test_load_lazy_on_single_engine_is_a_persistence_error(single_dir):
    with pytest.raises(PersistenceError, match="sharded index directory"):
        repro.load(single_dir, mode="lazy")


def test_load_parallel_on_single_engine_raises_with_guidance(single_dir):
    with pytest.raises(ValueError, match="re-shard"):
        repro.load(single_dir, parallel="process")
    with pytest.raises(ValueError, match="re-shard"):
        repro.load(single_dir, parallel="thread")
    # serial is every engine's native mode — accepted everywhere.
    assert isinstance(repro.load(single_dir, parallel="serial"), LES3)


def test_load_parallel_applies_to_sharded(sharded_dir):
    loaded = repro.load(sharded_dir, parallel="thread")
    try:
        assert loaded.parallel == "thread"
    finally:
        loaded.close()


def test_load_verify_override(single_dir, sharded_dir):
    assert repro.load(single_dir, verify="scalar").verify == "scalar"
    assert repro.load(sharded_dir, verify="scalar").verify == "scalar"
    with pytest.raises(ValueError, match="verify"):
        repro.load(single_dir, verify="quantum")


def test_load_unknown_parallel_mode(single_dir):
    with pytest.raises(ValueError, match="parallel"):
        repro.load(single_dir, parallel="gpu")


def test_load_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        repro.load(tmp_path / "nowhere")


def test_load_is_exported_at_top_level():
    assert repro.load is not None
    for name in ("load", "QueryRequest", "QueryResult", "execute", "execute_batch"):
        assert name in repro.__all__


# -- deprecated wrappers -----------------------------------------------------


def test_load_engine_is_a_deprecated_alias(single_dir, engine):
    with pytest.warns(DeprecationWarning, match="repro.load"):
        loaded = load_engine(single_dir)
    query = _tokens(engine.dataset, 2)
    assert loaded.knn(query, k=3).matches == engine.knn(query, k=3).matches


def test_load_sharded_is_a_deprecated_alias(sharded_dir, sharded):
    with pytest.warns(DeprecationWarning, match="repro.load"):
        loaded = load_sharded(sharded_dir)
    assert isinstance(loaded, ShardedLES3)
    assert loaded.num_shards == sharded.num_shards


def test_unified_load_does_not_warn(single_dir, recwarn):
    repro.load(single_dir)
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


# -- QueryRequest validation -------------------------------------------------


def test_knn_request_validates_eagerly():
    with pytest.raises(ValueError, match="at least one token"):
        QueryRequest.knn([], k=3)
    for bad_k in (0, -1, 2.5, True, None):
        with pytest.raises(ValueError, match="positive integer"):
            QueryRequest.knn(["a"], k=bad_k)
    request = QueryRequest.knn(["a", "b"], k=3)
    assert request.kind == "knn" and request.tokens == ("a", "b") and request.k == 3


def test_range_request_validates_eagerly():
    with pytest.raises(ValueError, match="at least one token"):
        QueryRequest.range([], threshold=0.5)
    for bad in (-0.1, 1.5, "high", None):
        with pytest.raises(ValueError, match="threshold"):
            QueryRequest.range(["a"], threshold=bad)
    assert QueryRequest.range(["a"], threshold=0).threshold == 0.0


def test_join_request_validates_eagerly():
    for bad in (0.0, -1, 1.01):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            QueryRequest.join(threshold=bad)
    assert QueryRequest.join(threshold=1).tokens is None


def test_request_mode_validation():
    with pytest.raises(ValueError, match="verify"):
        QueryRequest.knn(["a"], k=1, verify="quantum")
    with pytest.raises(ValueError, match="parallel"):
        QueryRequest.range(["a"], threshold=0.5, parallel="gpu")


def test_requests_are_frozen():
    request = QueryRequest.knn(["a"], k=1)
    with pytest.raises(AttributeError):
        request.k = 2


def test_from_payload_round_trip():
    request = QueryRequest.from_payload("knn", {"tokens": ["a", "b"], "k": 5})
    assert request == QueryRequest.knn(["a", "b"], k=5)
    request = QueryRequest.from_payload(
        "range", {"tokens": ["a"], "threshold": 0.5, "verify": "scalar"}
    )
    assert request.verify == "scalar"
    assert QueryRequest.from_payload("join", {"threshold": 0.8}).kind == "join"


def test_from_payload_rejects_junk():
    with pytest.raises(ValueError, match="unknown query kind"):
        QueryRequest.from_payload("fuzzy", {})
    with pytest.raises(ValueError, match="JSON object"):
        QueryRequest.from_payload("knn", ["a"])
    with pytest.raises(ValueError, match="oops"):
        QueryRequest.from_payload("knn", {"tokens": ["a"], "k": 1, "oops": 1})
    with pytest.raises(ValueError, match="list of strings"):
        QueryRequest.from_payload("knn", {"tokens": "a b", "k": 1})
    with pytest.raises(ValueError, match="threshold"):
        QueryRequest.from_payload("range", {"tokens": ["a"]})


# -- execute / execute_batch -------------------------------------------------


def test_execute_matches_direct_engine_calls(engine):
    query = _tokens(engine.dataset, 3)
    direct = engine.knn(query, k=4)
    result = execute(engine, QueryRequest.knn(query, k=4))
    assert isinstance(result, QueryResult)
    assert result.kind == "knn"
    assert result.matches == direct.matches
    assert result.stats.candidates_verified == direct.stats.candidates_verified

    direct = engine.range(query, threshold=0.4)
    assert execute(engine, QueryRequest.range(query, threshold=0.4)).matches == direct.matches

    direct = engine.join(0.8)
    assert execute(engine, QueryRequest.join(threshold=0.8)).matches == direct.pairs


def test_execute_is_engine_independent(engine, sharded):
    query = _tokens(engine.dataset, 5)
    request = QueryRequest.range(query, threshold=0.5)
    assert execute(engine, request).matches == execute(sharded, request).matches


def test_execute_rejects_unknown_kind(engine):
    bogus = QueryRequest(kind="fuzzy", tokens=("a",))
    with pytest.raises(ValueError, match="unknown query kind"):
        execute(engine, bogus)
    assert set(QUERY_KINDS) == {"knn", "range", "join"}


@pytest.mark.parametrize("engine_fixture", ["engine", "sharded"])
def test_execute_batch_is_bit_identical_to_execute(engine_fixture, request):
    target = request.getfixturevalue(engine_fixture)
    dataset = target.dataset
    requests = []
    for index in range(0, 24, 2):
        tokens = _tokens(dataset, index)
        requests.append(QueryRequest.knn(tokens, k=3))
        requests.append(QueryRequest.knn(tokens, k=7))  # second coalesce bucket
        requests.append(QueryRequest.range(tokens, threshold=0.5))
    requests.append(QueryRequest.join(threshold=0.9))
    requests.append(QueryRequest.knn(_tokens(dataset, 1), k=3, verify="scalar"))
    batched = execute_batch(target, requests)
    assert len(batched) == len(requests)
    for req, got in zip(requests, batched):
        expected = execute(target, req)
        assert got.kind == expected.kind == req.kind
        assert got.matches == expected.matches


def test_execute_batch_empty(engine):
    assert execute_batch(engine, []) == []


def test_query_result_payload_shape(engine):
    payload = execute(engine, QueryRequest.knn(_tokens(engine.dataset, 0), k=2)).to_payload()
    assert payload["kind"] == "knn"
    assert payload["count"] == len(payload["matches"])
    assert all(isinstance(match, list) for match in payload["matches"])
    assert set(payload["stats"]) == {
        "candidates_verified", "groups_scored", "groups_pruned",
    }


# -- signature parity (satellite: one canonical kwargs set) ------------------

_QUERY_METHODS = [
    "knn",
    "range",
    "knn_record",
    "range_record",
    "batch_knn_record",
    "batch_range_record",
    "join",
]


@pytest.mark.parametrize("name", _QUERY_METHODS)
def test_query_signatures_are_identical_across_engines(name):
    single = inspect.signature(getattr(LES3, name))
    distributed = inspect.signature(getattr(ShardedLES3, name))
    assert [p.name for p in single.parameters.values()] == [
        p.name for p in distributed.parameters.values()
    ], f"{name}: parameter names diverge"
    assert [p.default for p in single.parameters.values()] == [
        p.default for p in distributed.parameters.values()
    ], f"{name}: parameter defaults diverge"


@pytest.mark.parametrize("name", _QUERY_METHODS)
def test_query_methods_accept_verify_and_parallel(name):
    for cls in (LES3, ShardedLES3):
        parameters = inspect.signature(getattr(cls, name)).parameters
        assert "verify" in parameters, f"{cls.__name__}.{name} lacks verify="
        assert "parallel" in parameters, f"{cls.__name__}.{name} lacks parallel="
        assert parameters["verify"].default is None
        assert parameters["parallel"].default is None


def test_single_engine_rejects_unknown_parallel_mode(engine):
    query = _tokens(engine.dataset, 0)
    with pytest.raises(ValueError, match="parallel"):
        engine.knn(query, k=2, parallel="gpu")
    # Explicit serial (and any known mode) is accepted — execution is
    # always serial on a single-node engine, so results are identical.
    assert (
        engine.knn(query, k=2, parallel="thread").matches
        == engine.knn(query, k=2).matches
    )
