"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import zipf_dataset


@pytest.fixture(scope="module")
def data_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "data.txt"
    zipf_dataset(120, 150, (2, 6), seed=50).save(path)
    return path


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, data_file):
    index = tmp_path_factory.mktemp("cli") / "index"
    code = main(
        [
            "build",
            str(data_file),
            str(index),
            "--groups",
            "6",
            "--pairs",
            "300",
            "--epochs",
            "1",
        ]
    )
    assert code == 0
    return index


class TestBuild:
    def test_build_creates_index(self, index_dir):
        assert (index_dir / "manifest.json").exists()
        assert (index_dir / "dataset.txt").exists()
        assert (index_dir / "groups.json").exists()

    def test_build_empty_dataset_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        code = main(["build", str(empty), str(tmp_path / "idx")])
        assert code == 1
        assert "empty" in capsys.readouterr().err

    def test_default_group_count(self, tmp_path, data_file):
        index = tmp_path / "defaults"
        assert main(["build", str(data_file), str(index), "--pairs", "200", "--epochs", "1"]) == 0


class TestQueries:
    def test_knn_outputs_matches(self, index_dir, data_file, capsys):
        query = data_file.read_text().splitlines()[0]
        code = main(["knn", str(index_dir), "--query", query, "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 3
        assert lines[0].startswith("1.0000")  # the set itself

    def test_range_outputs_matches(self, index_dir, data_file, capsys):
        query = data_file.read_text().splitlines()[0]
        code = main(["range", str(index_dir), "--query", query, "--threshold", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1.0000" in out

    def test_unknown_tokens_query(self, index_dir, capsys):
        code = main(["knn", str(index_dir), "--query", "zzz yyy", "-k", "1"])
        assert code == 0
        assert "0.0000" in capsys.readouterr().out


class TestJoin:
    def test_join_outputs_pairs(self, index_dir, capsys):
        code = main(["join", str(index_dir), "--threshold", "0.9"])
        assert code == 0
        captured = capsys.readouterr()
        assert "pairs" in captured.err
        assert "pruned" in captured.err

    def test_join_verify_both_reports_speedup(self, index_dir, capsys):
        code = main(["join", str(index_dir), "--threshold", "0.8", "--verify", "both"])
        assert code == 0
        assert "speedup" in capsys.readouterr().err

    def test_join_sharded_identical_output(self, index_dir, capsys):
        args = ["join", str(index_dir), "--threshold", "0.5", "--limit", "1000000"]
        assert main(args) == 0
        single = capsys.readouterr()
        assert main(args + ["--shards", "3"]) == 0
        sharded = capsys.readouterr()
        assert single.out and sharded.out == single.out
        # Identical pairs and candidate counts may differ only in pruning.
        assert single.err.split(";")[0] == sharded.err.split(";")[0]

    def test_join_limit_truncates(self, index_dir, capsys):
        assert main(["join", str(index_dir), "--threshold", "0.1", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert len([line for line in out.splitlines() if line.startswith("0") or line.startswith("1")]) <= 3

    def test_join_rejects_bad_arguments(self, index_dir, capsys):
        assert main(["join", str(index_dir), "--threshold", "0.0"]) == 1
        assert "threshold" in capsys.readouterr().err
        assert main(["join", str(index_dir), "--threshold", "0.5", "--shards", "0"]) == 1
        assert "--shards" in capsys.readouterr().err
        assert main(["join", str(index_dir), "--threshold", "0.5", "--limit", "-1"]) == 1
        assert "--limit" in capsys.readouterr().err


class TestStatsAndValidate:
    def test_stats(self, data_file, capsys):
        assert main(["stats", str(data_file)]) == 0
        out = capsys.readouterr().out
        assert "sets:      120" in out
        assert "universe:" in out

    def test_validate_healthy(self, index_dir, capsys):
        assert main(["validate", str(index_dir)]) == 0
        assert "index OK" in capsys.readouterr().out

    def test_validate_accepts_index_with_deletes(self, index_dir, tmp_path, capsys):
        import shutil

        from repro.core import load_engine, save_engine

        # Mutate a copy: removes on a loaded engine are durable now (they
        # append to the generation's delta.log), and index_dir is shared.
        source = tmp_path / "source"
        shutil.copytree(index_dir, source)
        engine = load_engine(source)
        engine.remove(0)
        engine.remove(7)
        target = tmp_path / "with-deletes"
        save_engine(engine, target)
        assert main(["validate", str(target)]) == 0
        assert "index OK" in capsys.readouterr().out

    def test_validate_corrupt(self, index_dir, tmp_path, capsys):
        import json
        import shutil

        corrupt = tmp_path / "corrupt"
        shutil.copytree(index_dir, corrupt)
        groups = json.loads((corrupt / "groups.json").read_text())
        groups[0] = groups[0][1:]  # record no longer covered
        (corrupt / "groups.json").write_text(json.dumps(groups))
        code = main(["validate", str(corrupt)])
        assert code == 2
        assert "CORRUPT" in capsys.readouterr().out

    def test_validate_missing_directory(self, tmp_path, capsys):
        code = main(["validate", str(tmp_path / "missing")])
        assert code == 2
        assert "CORRUPT" in capsys.readouterr().out


class TestQueryValidation:
    def test_empty_query_rejected(self, index_dir, capsys):
        assert main(["knn", str(index_dir), "--query", "  ", "-k", "3"]) == 1
        assert "at least one token" in capsys.readouterr().err

    def test_nonpositive_k_rejected(self, index_dir, capsys):
        assert main(["knn", str(index_dir), "--query", "a", "-k", "0"]) == 1
        assert "positive" in capsys.readouterr().err

    def test_out_of_range_threshold_rejected(self, index_dir, capsys):
        assert main(["range", str(index_dir), "--query", "a", "--threshold", "1.5"]) == 1
        assert "threshold" in capsys.readouterr().err


class TestSharded:
    def test_knn_shards_identical_output(self, index_dir, data_file, capsys):
        query = data_file.read_text().splitlines()[0]
        assert main(["knn", str(index_dir), "--query", query, "-k", "5"]) == 0
        single = capsys.readouterr().out
        assert main(["knn", str(index_dir), "--query", query, "-k", "5", "--shards", "3"]) == 0
        assert capsys.readouterr().out == single

    def test_range_shards_identical_output(self, index_dir, data_file, capsys):
        query = data_file.read_text().splitlines()[1]
        args = ["range", str(index_dir), "--query", query, "--threshold", "0.5"]
        assert main(args) == 0
        single = capsys.readouterr().out
        assert main(args + ["--shards", "4"]) == 0
        assert capsys.readouterr().out == single

    def test_bench_reports_throughput(self, index_dir, capsys):
        code = main(
            ["bench", str(index_dir), "--queries", "20", "-k", "3",
             "--threshold", "0.6", "--shards", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queries/s" in out
        assert "knn:" in out and "range:" in out
        assert "2 shard(s)" in out

    def test_query_commands_reject_nonpositive_shards(self, index_dir, capsys):
        assert main(["knn", str(index_dir), "--query", "a", "-k", "1", "--shards", "0"]) == 1
        assert "--shards" in capsys.readouterr().err
        args = ["range", str(index_dir), "--query", "a", "--threshold", "0.5", "--shards", "-2"]
        assert main(args) == 1
        assert "--shards" in capsys.readouterr().err

    def test_bench_rejects_bad_arguments(self, index_dir, capsys):
        assert main(["bench", str(index_dir), "--queries", "0"]) == 1
        assert "positive" in capsys.readouterr().err
        assert main(["bench", str(index_dir), "--shards", "0"]) == 1
        assert "positive" in capsys.readouterr().err
        assert main(["bench", str(index_dir), "--threshold", "1.5"]) == 1
        assert "threshold" in capsys.readouterr().err


@pytest.fixture(scope="module")
def sharded_dir(tmp_path_factory, index_dir):
    sharded = tmp_path_factory.mktemp("cli") / "sharded"
    assert main(["save", str(index_dir), str(sharded), "--shards", "3"]) == 0
    return sharded


class TestShardedLifecycle:
    def test_save_writes_sharded_layout(self, sharded_dir):
        assert (sharded_dir / "manifest.json").exists()
        assert (sharded_dir / "dataset.txt").exists()
        assert (sharded_dir / "shard-0000" / "groups.json").exists()
        assert (sharded_dir / "shard-0002" / "manifest.json").exists()

    def test_load_summarizes_both_kinds(self, index_dir, sharded_dir, capsys):
        assert main(["load", str(sharded_dir)]) == 0
        out = capsys.readouterr().out
        assert "sharded index" in out and "3 shard(s)" in out
        assert main(["load", str(index_dir)]) == 0
        assert "single-engine index" in capsys.readouterr().out

    def test_load_reports_saved_verify_mode(self, tmp_path, index_dir, capsys):
        """The summary shows the persisted verify mode, not the CLI default."""
        from repro.core import load_engine, save_engine

        engine = load_engine(index_dir)
        engine.verify = "scalar"
        save_engine(engine, tmp_path / "scalar-index")
        assert main(["load", str(tmp_path / "scalar-index")]) == 0
        assert "verify 'scalar'" in capsys.readouterr().out

    def test_sharded_queries_identical_to_single(self, index_dir, sharded_dir,
                                                 data_file, capsys):
        query = data_file.read_text().splitlines()[0]
        assert main(["knn", str(index_dir), "--query", query, "-k", "4"]) == 0
        single = capsys.readouterr().out
        for parallel in ("serial", "thread", "process"):
            args = ["knn", str(sharded_dir), "--query", query, "-k", "4",
                    "--parallel", parallel]
            assert main(args) == 0
            assert capsys.readouterr().out == single

    def test_join_on_sharded_dir(self, index_dir, sharded_dir, capsys):
        assert main(["join", str(index_dir), "--threshold", "0.8"]) == 0
        single = capsys.readouterr().out
        assert main(["join", str(sharded_dir), "--threshold", "0.8",
                     "--parallel", "process"]) == 0
        assert capsys.readouterr().out == single

    def test_bench_on_sharded_dir(self, sharded_dir, capsys):
        assert main(["bench", str(sharded_dir), "--queries", "10", "-k", "3",
                     "--threshold", "0.6", "--parallel", "process"]) == 0
        out = capsys.readouterr().out
        assert "queries/s" in out and "parallel=process" in out

    def test_validate_sharded(self, sharded_dir, capsys):
        assert main(["validate", str(sharded_dir)]) == 0
        out = capsys.readouterr().out
        assert "shard 0000" in out and out.strip().endswith("index OK")

    def test_validate_sharded_corrupt(self, tmp_path, index_dir, capsys):
        sharded = tmp_path / "corrupt"
        assert main(["save", str(index_dir), str(sharded), "--shards", "2"]) == 0
        capsys.readouterr()
        manifest = sharded / "shard-0001" / "manifest.json"
        manifest.write_text(manifest.read_text()[:30])
        assert main(["validate", str(sharded)]) == 2
        assert "CORRUPT" in capsys.readouterr().out

    def test_save_rejects_sharded_input(self, sharded_dir, tmp_path, capsys):
        assert main(["save", str(sharded_dir), str(tmp_path / "again"),
                     "--shards", "2"]) == 1
        assert "already a sharded index" in capsys.readouterr().err

    def test_save_rejects_nonpositive_shards(self, index_dir, tmp_path, capsys):
        assert main(["save", str(index_dir), str(tmp_path / "out"),
                     "--shards", "0"]) == 1
        assert "--shards" in capsys.readouterr().err

    def test_reshard_of_sharded_dir_rejected(self, sharded_dir, capsys):
        assert main(["knn", str(sharded_dir), "--query", "a", "-k", "1",
                     "--shards", "4"]) == 1
        assert "already" in capsys.readouterr().err

    def test_process_mode_needs_sharded_dir(self, index_dir, capsys):
        assert main(["knn", str(index_dir), "--query", "a", "-k", "1",
                     "--parallel", "process"]) == 1
        assert "repro save" in capsys.readouterr().err
        assert main(["bench", str(index_dir), "--queries", "5",
                     "--parallel", "process"]) == 1
        assert "repro save" in capsys.readouterr().err

    def test_thread_mode_needs_shards(self, index_dir, capsys):
        assert main(["knn", str(index_dir), "--query", "a", "-k", "1",
                     "--parallel", "thread"]) == 1
        assert "--shards" in capsys.readouterr().err

    def test_thread_mode_with_reshard(self, index_dir, data_file, capsys):
        query = data_file.read_text().splitlines()[1]
        assert main(["knn", str(index_dir), "--query", query, "-k", "3"]) == 0
        single = capsys.readouterr().out
        assert main(["knn", str(index_dir), "--query", query, "-k", "3",
                     "--shards", "2", "--parallel", "thread"]) == 0
        assert capsys.readouterr().out == single


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestLoadModes:
    """--mode memory|mmap|lazy on load/knn/range/join/bench."""

    def test_knn_identical_across_modes(self, index_dir, data_file, capsys):
        query = data_file.read_text().splitlines()[0]
        assert main(["knn", str(index_dir), "--query", query, "-k", "4"]) == 0
        reference = capsys.readouterr().out
        assert main(["knn", str(index_dir), "--query", query, "-k", "4",
                     "--mode", "mmap"]) == 0
        assert capsys.readouterr().out == reference

    def test_sharded_queries_identical_across_modes(self, sharded_dir, data_file,
                                                    capsys):
        query = data_file.read_text().splitlines()[2]
        assert main(["range", str(sharded_dir), "--query", query,
                     "--threshold", "0.5"]) == 0
        reference = capsys.readouterr().out
        for mode in ("mmap", "lazy"):
            assert main(["range", str(sharded_dir), "--query", query,
                         "--threshold", "0.5", "--mode", mode]) == 0
            assert capsys.readouterr().out == reference, mode

    def test_join_and_bench_accept_mode(self, sharded_dir, capsys):
        assert main(["join", str(sharded_dir), "--threshold", "0.8",
                     "--mode", "lazy"]) == 0
        capsys.readouterr()
        assert main(["bench", str(sharded_dir), "--queries", "5", "-k", "2",
                     "--threshold", "0.6", "--mode", "mmap"]) == 0
        assert "queries/s" in capsys.readouterr().out

    def test_load_summary_in_lazy_mode(self, sharded_dir, capsys):
        assert main(["load", str(sharded_dir), "--mode", "lazy"]) == 0
        out = capsys.readouterr().out
        assert "sharded index" in out and "3 shard(s)" in out

    def test_lazy_needs_a_sharded_dir(self, index_dir, capsys):
        assert main(["knn", str(index_dir), "--query", "a", "-k", "1",
                     "--mode", "lazy"]) == 1
        assert "sharded index directory" in capsys.readouterr().err
        assert main(["bench", str(index_dir), "--queries", "5",
                     "--mode", "lazy"]) == 1
        assert "sharded index directory" in capsys.readouterr().err

    def test_mmap_of_pre_v3_dir_reports_cleanly(self, tmp_path, index_dir, capsys):
        """A clear error, not a traceback, for text-only (pre-v3) saves."""
        import shutil

        legacy = tmp_path / "legacy"
        shutil.copytree(index_dir, legacy)
        (legacy / "dataset.bin").unlink()
        assert main(["knn", str(legacy), "--query", "a", "-k", "1",
                     "--mode", "mmap"]) == 1
        assert "saved before format v3" in capsys.readouterr().err

    def test_validate_checks_binary_dataset(self, tmp_path, index_dir, capsys):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(index_dir, broken)
        path = broken / "dataset.bin"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(data))
        assert main(["validate", str(broken)]) == 2
        assert "CORRUPT" in capsys.readouterr().out


class TestV1Compatibility:
    @pytest.fixture()
    def v1_dir(self, tmp_path, index_dir):
        """A directory exactly as the original v1 writer left it."""
        import json
        import shutil

        legacy = tmp_path / "v1"
        shutil.copytree(index_dir, legacy)
        (legacy / "dataset.bin").unlink()
        manifest = json.loads((legacy / "manifest.json").read_text())
        manifest = {
            key: manifest[key]
            for key in ("measure", "backend", "num_records", "universe_size")
        }
        manifest["format_version"] = 1
        (legacy / "manifest.json").write_text(json.dumps(manifest, indent=2))
        return legacy

    def test_load_reports_default_verify_not_a_crash(self, v1_dir, capsys):
        """Regression: `repro load` on a v1 dir reports verify '<default>'."""
        assert main(["load", str(v1_dir)]) == 0
        out = capsys.readouterr().out
        assert "single-engine index" in out
        assert "verify 'columnar'" in out and "0 tombstone(s)" in out

    def test_v1_queries_and_validate_still_work(self, v1_dir, data_file, capsys):
        query = data_file.read_text().splitlines()[0]
        assert main(["knn", str(v1_dir), "--query", query, "-k", "2"]) == 0
        capsys.readouterr()
        assert main(["validate", str(v1_dir)]) == 0
