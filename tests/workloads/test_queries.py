"""Tests for query workload construction."""

import pytest

from repro.workloads import perturbed_queries, sample_queries


class TestSampleQueries:
    def test_queries_come_from_dataset(self, zipf_small):
        queries = sample_queries(zipf_small, 20, seed=0)
        records = set(zipf_small.records)
        assert all(query in records for query in queries)

    def test_count_and_determinism(self, zipf_small):
        a = sample_queries(zipf_small, 10, seed=3)
        b = sample_queries(zipf_small, 10, seed=3)
        assert len(a) == 10
        assert a == b

    def test_count_capped_by_dataset(self, tiny_dataset):
        assert len(sample_queries(tiny_dataset, 100, seed=0)) == len(tiny_dataset)


class TestPerturbedQueries:
    def test_replacement_changes_tokens(self, zipf_small):
        originals = sample_queries(zipf_small, 15, seed=4)
        perturbed = perturbed_queries(zipf_small, 15, replace_fraction=0.5, seed=4)
        changed = sum(1 for o, p in zip(originals, perturbed) if o != p)
        assert changed > 0

    def test_zero_fraction_keeps_membership_tokens(self, zipf_small):
        queries = perturbed_queries(zipf_small, 10, replace_fraction=0.0, seed=5)
        universe = len(zipf_small.universe)
        assert all(max(q.distinct) < universe for q in queries)

    def test_invalid_fraction(self, zipf_small):
        with pytest.raises(ValueError):
            perturbed_queries(zipf_small, 5, replace_fraction=1.5)
